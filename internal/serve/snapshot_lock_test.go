package serve

// Internal regression tests for the sweep-snapshot flush path. The defect
// they pin down — found by pdnlint's lockhold analyzer — was
// sparam.SaveSweepCheckpoint (an fsync) running while jb.sweepMu was held:
// every concurrent merge and every solveShard skip-list copy stalled behind
// disk latency for the duration of the write. The fix (flushSweepSnapshot)
// runs the write with sweepMu released and coalesces concurrent merges into
// fewer fsyncs. These tests use the Server.saveSweep seam with a blocking
// fake writer; they deadlock into their timeouts if the write is ever moved
// back under the lock.

import (
	"sync/atomic"
	"testing"
	"time"

	"pdnsim/internal/diag"
	"pdnsim/internal/mat"
	"pdnsim/internal/sparam"
)

// snapJob builds the minimal job state mergeShard and flushSweepSnapshot
// need: a sweep grid of nf points with no results yet.
func snapJob(nf int) *job {
	return &job{
		id:      "snaplock",
		sweep:   &SweepSpec{FMin: 1e6, FMax: 1e9, NF: nf, Z0: 50},
		diag:    diag.New(),
		freqs:   sparam.LinSpace(1e6, 1e9, nf),
		results: make([]*mat.CMatrix, nf),
		done:    make([]bool, nf),
		points:  make([]sparam.PointStatus, nf),
	}
}

// TestSnapshotWriteReleasesSweepMu proves the snapshot write runs with
// sweepMu released: while the (blocked) writer is inside saveSweep, another
// goroutine must be able to take and release the lock immediately. On the
// pre-fix code — SaveSweepCheckpoint called between sweepMu.Lock and Unlock
// in mergeShard — the lock stays held for the whole write and this test
// fails its 2-second deadline.
func TestSnapshotWriteReleasesSweepMu(t *testing.T) {
	s := New(Config{StateDir: t.TempDir()}, Hooks{})
	enter := make(chan struct{})
	release := make(chan struct{})
	s.saveSweep = func(path string, freqs []float64, z0 float64, done []bool, results []*mat.CMatrix) error {
		close(enter)
		<-release
		return nil
	}

	jb := snapJob(2)
	merged := make(chan struct{})
	go func() {
		defer close(merged)
		s.mergeShard(jb, &shardTask{jb: jb, idx: 0, lo: 0, hi: 1},
			[]*mat.CMatrix{mat.CEye(1)}, nil)
	}()

	<-enter // the snapshot write is in flight
	acquired := make(chan struct{})
	go func() {
		jb.sweepMu.Lock()
		jb.sweepMu.Unlock() // probe: prove the lock is free mid-write
		close(acquired)
	}()
	select {
	case <-acquired:
	case <-time.After(2 * time.Second):
		t.Fatal("sweepMu still held while the snapshot write is in flight; the fsync must run with the lock released")
	}

	close(release)
	select {
	case <-merged:
	case <-time.After(2 * time.Second):
		t.Fatal("mergeShard did not return after the snapshot write completed")
	}
	if jb.snapshotPath == "" {
		t.Fatal("snapshotPath not recorded after a successful flush")
	}
	jb.sweepMu.Lock()
	if jb.snapWritten < 1 || jb.snapWriting {
		t.Fatalf("flush bookkeeping wrong: snapWritten=%d snapWriting=%v", jb.snapWritten, jb.snapWriting)
	}
	jb.sweepMu.Unlock()
}

// TestSnapshotFlushCoalesces proves merges racing a slow write coalesce:
// three merges land while the first write is blocked, and a single catch-up
// write — capturing the newest generation — covers all of them. Four
// generations, exactly two fsyncs.
func TestSnapshotFlushCoalesces(t *testing.T) {
	s := New(Config{StateDir: t.TempDir()}, Hooks{})
	var calls atomic.Int32
	enter := make(chan struct{})
	release := make(chan struct{})
	s.saveSweep = func(path string, freqs []float64, z0 float64, done []bool, results []*mat.CMatrix) error {
		if calls.Add(1) == 1 {
			close(enter)
			<-release
		}
		return nil
	}

	jb := snapJob(4)
	first := make(chan struct{})
	go func() {
		defer close(first)
		s.mergeShard(jb, &shardTask{jb: jb, idx: 0, lo: 0, hi: 1},
			[]*mat.CMatrix{mat.CEye(1)}, nil)
	}()
	<-enter // write for generation 1 is blocked inside saveSweep

	rest := make(chan struct{}, 3)
	for i := 1; i < 4; i++ {
		go func(i int) {
			s.mergeShard(jb, &shardTask{jb: jb, idx: i, lo: i, hi: i + 1},
				[]*mat.CMatrix{mat.CEye(1)}, nil)
			rest <- struct{}{}
		}(i)
	}
	// Wait until all three merges have bumped the generation (they then
	// block in flushSweepSnapshot behind the in-flight write).
	deadline := time.Now().Add(2 * time.Second)
	for {
		jb.sweepMu.Lock()
		gen := jb.snapGen
		jb.sweepMu.Unlock()
		if gen == 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("merges did not reach generation 4 (got %d); are they blocked on sweepMu?", gen)
		}
		time.Sleep(time.Millisecond)
	}

	close(release)
	for i := 0; i < 3; i++ {
		select {
		case <-rest:
		case <-time.After(2 * time.Second):
			t.Fatal("a coalesced merge never returned after the blocked write released")
		}
	}
	<-first

	if got := calls.Load(); got != 2 {
		t.Fatalf("4 generations flushed with %d writes; want exactly 2 (one blocked, one catch-up)", got)
	}
	jb.sweepMu.Lock()
	defer jb.sweepMu.Unlock()
	if jb.snapWritten != 4 {
		t.Fatalf("snapWritten = %d after all merges returned, want 4", jb.snapWritten)
	}
}
