package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"pdnsim/internal/checkpoint"
	"pdnsim/internal/core"
	"pdnsim/internal/diag"
)

// journalFile is the write-ahead job journal inside the state directory: an
// append-only sequence of CRC-framed records (the checkpoint envelope, one
// per line) that lets Recover rebuild the set of accepted-but-unfinished jobs
// after a crash. The journal is metadata only — the sweep results themselves
// are in the per-job snapshot files — so losing it degrades crash recovery,
// never correctness.
const journalFile = "jobs.journal"

// Journal record kinds. The replay logic needs only accept and finish to
// compute the live set; start, lease and shard-done records are evidence for
// operators and tests (which shard held a lease when the process died, how
// far a sweep had progressed) and are dropped on compaction.
const (
	journalKindAccept    = "serve-accept"
	journalKindStart     = "serve-start"
	journalKindLease     = "serve-lease"
	journalKindShardDone = "serve-shard-done"
	journalKindFinish    = "serve-finish"
)

// jobAcceptRec is the write-ahead accept record: the full request, so a
// replay can resubmit the job without any other source of truth.
type jobAcceptRec struct {
	ID          string          `json:"id"`
	Board       json.RawMessage `json:"board"`
	Sweep       *SweepSpec      `json:"sweep,omitempty"`
	DeadlineMS  int64           `json:"deadline_ms,omitempty"`
	Fingerprint string          `json:"fingerprint,omitempty"`
	Accepted    string          `json:"accepted,omitempty"`
}

// jobStartRec marks a worker picking the job up.
type jobStartRec struct {
	ID          string `json:"id"`
	Fingerprint string `json:"fingerprint,omitempty"`
}

// shardLeaseRec is written before a shard dispatch executes: the claim, its
// attempt number, and when the lease expires.
type shardLeaseRec struct {
	ID          string `json:"id"`
	Shard       int    `json:"shard"`
	Lo          int    `json:"lo"`
	Hi          int    `json:"hi"`
	Attempt     int    `json:"attempt"`
	Fingerprint string `json:"fingerprint,omitempty"`
	Expires     string `json:"expires,omitempty"`
}

// shardDoneRec marks a shard dispatch that completed and merged, after its
// points were made durable in the job's sweep snapshot.
type shardDoneRec struct {
	ID          string `json:"id"`
	Shard       int    `json:"shard"`
	Lo          int    `json:"lo"`
	Hi          int    `json:"hi"`
	Points      int    `json:"points"`
	Fingerprint string `json:"fingerprint,omitempty"`
}

// jobFinishRec marks a job terminal. Replay treats a finished id as settled
// regardless of record order (ids are never reused, so an accept landing
// after a fast worker's finish cannot resurrect the job).
type jobFinishRec struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Class string `json:"class,omitempty"`
}

// journalAppend writes one record to the job journal under the storage
// retry policy (Config.StoragePolicy), returning true when the record is
// durably on disk. Degraded durability skips the append outright — the
// storage is known sick and the re-arm probe owns recovery — and an append
// that exhausts its retries degrades durability. In both cases the job is
// marked durable:false with the cause, and service continues: a failed
// append costs crash-recovery coverage, never the job. Call without holding
// s.mu — the append fsyncs and the retries sleep.
func (s *Server) journalAppend(jb *job, kind string, payload any) bool {
	s.mu.Lock()
	j := s.journal
	degraded := s.durState == DurabilityDegraded
	s.mu.Unlock()
	if degraded {
		s.mu.Lock()
		s.markNonDurableLocked(jb, fmt.Sprintf("degraded durability: %s record not journaled", kind))
		s.mu.Unlock()
		return false
	}
	if j == nil {
		return false
	}
	err := s.storageRetry(func() error { return j.Append(kind, payload) })
	if err == nil {
		return true
	}
	s.mu.Lock()
	s.stats.JournalErrors++
	s.markNonDurableLocked(jb, fmt.Sprintf("journal append (%s) failed: %v", kind, err))
	jb.diag.Warnf("serve", "job journal", 0, 0, false,
		"journal append (%s) failed; crash recovery may not cover this transition: %v", kind, err)
	s.mu.Unlock()
	s.degradeOn("journal append ("+kind+")", err)
	return false
}

// RecoverReport summarises a Recover pass.
type RecoverReport struct {
	// Resubmitted lists the ids of jobs re-admitted to the queue, in their
	// original acceptance order and under their original ids.
	Resubmitted []string `json:"resubmitted,omitempty"`
	// SkippedBusy lists live jobs that did not fit the queue; they keep
	// their journal records and are retried on the next Recover.
	SkippedBusy []string `json:"skipped_busy,omitempty"`
	// Failed lists jobs whose journaled request no longer validates
	// ("id: reason"); they are reported and dropped.
	Failed []string `json:"failed,omitempty"`
	// TruncatedTail reports that the journal ended in a torn or corrupt
	// record (the expected signature of a mid-append crash); the valid
	// prefix was replayed.
	TruncatedTail bool `json:"truncated_tail,omitempty"`
	// ManifestJobs counts jobs found in the drain queue manifest;
	// ManifestEvicted reports that the manifest was removed because every
	// job in it was re-admitted (or is unrecoverable).
	ManifestJobs    int  `json:"manifest_jobs,omitempty"`
	ManifestEvicted bool `json:"manifest_evicted,omitempty"`
}

// Recover replays the job journal and the drain queue manifest from the
// state directory and resubmits every accepted-but-unfinished job under its
// original id, marked recovered so its sweep resumes from the job's own
// snapshot. Call once, after Start. The sequence is deliberate:
//
//  1. Replay the journal (longest valid prefix; a torn tail is the normal
//     crash signature) and union it with the manifest: journal accepts
//     without a finish record are crash-interrupted work, manifest entries
//     are drain-flushed work. Both resubmit; ids dedupe the overlap.
//  2. Compact the journal down to fresh accept records for the live set
//     BEFORE resubmitting — resubmitted jobs start finishing immediately,
//     and their finish records must land after the compaction, not be
//     erased by it.
//  3. Resubmit in acceptance order, restoring the id sequence so new
//     submissions never collide with recovered ids.
//  4. Evict the manifest only once none of its jobs still need it.
//
// With no state directory Recover is a no-op. Admission failures are
// per-job and reported; the returned error covers only an unreadable
// journal.
func (s *Server) Recover() (RecoverReport, error) {
	var rep RecoverReport
	if s.cfg.StateDir == "" {
		return rep, nil
	}
	recs, truncated, err := checkpoint.ReplayJournal(filepath.Join(s.cfg.StateDir, journalFile))
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return rep, err
	}
	rep.TruncatedTail = truncated

	accepts := make(map[string]jobAcceptRec)
	finished := make(map[string]bool)
	var order []string
	maxSeq := 0
	note := func(id string) {
		if n, ok := jobSeq(id); ok && n > maxSeq {
			maxSeq = n
		}
	}
	for _, r := range recs {
		switch r.Kind {
		case journalKindAccept:
			var a jobAcceptRec
			if json.Unmarshal(r.Payload, &a) != nil || a.ID == "" {
				continue
			}
			if _, seen := accepts[a.ID]; !seen {
				order = append(order, a.ID)
			}
			accepts[a.ID] = a
			note(a.ID)
		case journalKindFinish:
			var f jobFinishRec
			if json.Unmarshal(r.Payload, &f) != nil || f.ID == "" {
				continue
			}
			finished[f.ID] = true
			note(f.ID)
		}
	}

	// Drain-flushed jobs carry accept records but no finish; the manifest is
	// their canonical copy and covers journals lost to a separate failure.
	manPath := filepath.Join(s.cfg.StateDir, "queue.manifest")
	var man manifest
	haveManifest := checkpoint.Load(manPath, manifestKind, &man) == nil
	manifestIDs := make(map[string]bool)
	if haveManifest {
		rep.ManifestJobs = len(man.Jobs)
		for _, e := range man.Jobs {
			if e.ID == "" {
				continue
			}
			manifestIDs[e.ID] = true
			note(e.ID)
			if _, seen := accepts[e.ID]; !seen {
				order = append(order, e.ID)
				accepts[e.ID] = jobAcceptRec{ID: e.ID, Board: e.Board, Sweep: e.Sweep, DeadlineMS: e.DeadlineMS}
			}
		}
	}

	// Validate the live set. A job whose board no longer parses (journal
	// bitrot, schema drift) is unrecoverable: reported, then dropped by the
	// compaction below.
	type pendingJob struct {
		rec       jobAcceptRec
		spec      *core.BoardSpec
		deadline  time.Duration
		submitted time.Time
	}
	var live []pendingJob
	failedIDs := make(map[string]bool)
	for _, id := range order {
		if finished[id] {
			continue
		}
		a := accepts[id]
		spec, perr := core.ParseBoard(a.Board)
		if perr == nil && a.Sweep != nil {
			perr = a.Sweep.validate()
		}
		if perr != nil {
			rep.Failed = append(rep.Failed, id+": "+perr.Error())
			failedIDs[id] = true
			continue
		}
		deadline := time.Duration(a.DeadlineMS) * time.Millisecond
		if deadline <= 0 {
			deadline = s.cfg.DefaultDeadline
		}
		if deadline > s.cfg.MaxDeadline {
			deadline = s.cfg.MaxDeadline
		}
		submitted, terr := time.Parse(time.RFC3339Nano, a.Accepted)
		if terr != nil {
			submitted = time.Now()
		}
		live = append(live, pendingJob{rec: a, spec: spec, deadline: deadline, submitted: submitted})
	}

	s.mu.Lock()
	if maxSeq > s.seq {
		s.seq = maxSeq
	}
	j := s.journal
	s.mu.Unlock()
	rewriteOK := false
	var rewriteErr error
	if j != nil {
		var keep []checkpoint.JournalRecord
		for _, p := range live {
			if b, merr := json.Marshal(p.rec); merr == nil {
				keep = append(keep, checkpoint.JournalRecord{Kind: journalKindAccept, Payload: b})
			}
		}
		rewriteErr = s.storageRetry(func() error { return j.Rewrite(keep) })
		if rewriteErr != nil {
			s.mu.Lock()
			s.stats.JournalErrors++
			s.mu.Unlock()
			s.degradeOn("journal rewrite (recover)", rewriteErr)
		} else {
			rewriteOK = true
		}
	}

	for _, p := range live {
		jb := &job{
			id:          p.rec.ID,
			spec:        p.spec,
			rawBoard:    append([]byte(nil), p.rec.Board...),
			sweep:       p.rec.Sweep,
			deadline:    p.deadline,
			fingerprint: p.spec.Fingerprint(),
			recovered:   true,
			submitted:   p.submitted,
			state:       StateQueued,
			diag:        diag.New(),
			// The compacted journal's accept record is the recovered job's
			// durability: if the rewrite failed, the job still runs but may
			// not survive another crash.
			durable: rewriteOK,
		}
		if !rewriteOK && j != nil {
			jb.lastErr = fmt.Sprintf("journal rewrite failed during recovery: %v", rewriteErr)
		}
		s.mu.Lock()
		admitted := false
		if s.accepting {
			select {
			case s.queue <- jb:
				admitted = true
			default:
			}
		}
		if admitted {
			s.jobs[jb.id] = jb
			s.order = append(s.order, jb.id)
			s.stats.Accepted++
			s.stats.Recovered++
			s.pruneLocked()
			s.cond.Signal()
		}
		s.mu.Unlock()
		if admitted {
			rep.Resubmitted = append(rep.Resubmitted, jb.id)
		} else {
			rep.SkippedBusy = append(rep.SkippedBusy, jb.id)
		}
	}

	if haveManifest {
		needed := false
		admitted := make(map[string]bool, len(rep.Resubmitted))
		for _, id := range rep.Resubmitted {
			admitted[id] = true
		}
		for id := range manifestIDs {
			if !admitted[id] && !failedIDs[id] && !finished[id] {
				needed = true
				break
			}
		}
		if !needed {
			if os.Remove(manPath) == nil {
				rep.ManifestEvicted = true
			}
		}
	}
	return rep, nil
}

// jobSeq extracts the numeric sequence of a "j-NNNNNN" job id, so Recover
// can restore the id counter past every id it has seen.
func jobSeq(id string) (int, bool) {
	rest, ok := strings.CutPrefix(id, "j-")
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}
