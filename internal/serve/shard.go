package serve

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"pdnsim/internal/mat"
	"pdnsim/internal/simerr"
	"pdnsim/internal/sparam"
)

// shardTask is one dispatchable slice of a sweep job: the half-open point
// range [lo, hi) of shard index idx. attempts counts dispatches consumed
// (lease expiries and panics requeue the task until the attempt budget runs
// out and the shard is quarantined).
type shardTask struct {
	jb       *job
	idx      int
	lo, hi   int
	attempts int
}

// beginSweep prepares a started job's sweep — frequency grid, restore from a
// resume snapshot (an explicit client resume_from, or the job's own snapshot
// for a crash-recovered job) — and fans its incomplete shards out to the
// pool. The calling worker returns to the pool afterwards; the worker that
// resolves the last shard finalises the job. Returns an error only for
// setup failures (an unreadable resume snapshot), before any shard is
// queued.
func (s *Server) beginSweep(jb *job) error {
	sw := jb.sweep
	freqs := sparam.LinSpace(sw.FMin, sw.FMax, sw.NF)
	n := len(freqs)
	results := make([]*mat.CMatrix, n)
	done := make([]bool, n)
	points := make([]sparam.PointStatus, n)
	for i := range points {
		points[i] = sparam.PointStatus{Freq: freqs[i]}
	}

	snapPath := s.snapshotPathFor(jb)
	resume := sw.ResumeFrom
	if resume == "" && jb.recovered && snapPath != "" {
		// A recovered job resumes from its own pre-crash snapshot — same id,
		// same path — when one survived; a job that crashed before its first
		// shard completed starts clean.
		if _, err := os.Stat(snapPath); err == nil {
			resume = snapPath
		}
	}
	restoredSnap := false
	if resume != "" {
		d, r, err := sparam.LoadSweepCheckpoint(resume, freqs, sw.Z0)
		if err != nil {
			return fmt.Errorf("serve: sweep resume: %w", err)
		}
		copy(done, d)
		copy(results, r)
		restoredSnap = true
	}

	jb.sweepMu.Lock()
	jb.freqs = freqs
	jb.results = results
	jb.done = done
	jb.sweepMu.Unlock()

	shardPts := s.cfg.ShardPoints
	total := (n + shardPts - 1) / shardPts
	var tasks []*shardTask
	restored := 0
	for idx := 0; idx < total; idx++ {
		lo := idx * shardPts
		hi := min(lo+shardPts, n)
		complete := true
		for i := lo; i < hi; i++ {
			if !done[i] {
				complete = false
				break
			}
		}
		if complete {
			restored++
			continue
		}
		tasks = append(tasks, &shardTask{jb: jb, idx: idx, lo: lo, hi: hi})
	}

	s.mu.Lock()
	jb.points = points
	jb.shardsTotal = total
	jb.shardsDone = restored
	jb.shardsOutstanding = len(tasks)
	if restoredSnap && snapPath != "" {
		if resume == snapPath {
			jb.snapshotPath = snapPath
		}
		if restored > 0 {
			jb.diag.Infof("serve", "sweep resume", float64(restored), 0,
				"restored %d complete shard(s) from %s", restored, resume)
		}
	}
	if len(tasks) == 0 {
		s.mu.Unlock()
		s.finalizeSweep(jb)
		return nil
	}
	s.shardQ = append(s.shardQ, tasks...)
	s.cond.Broadcast()
	s.mu.Unlock()
	return nil
}

// runShard executes one dispatch of one shard under its lease: journal the
// lease (write-ahead: the claim is on disk before the work starts), solve
// the shard's missing points under a context that expires with the lease,
// merge whatever completed, and triage the outcome — done, job-cancelled,
// requeued with jittered backoff, or quarantined.
func (s *Server) runShard(ctx context.Context, t *shardTask) {
	jb := t.jb
	s.mu.Lock()
	jctx := jb.ctx
	s.mu.Unlock()
	if jctx == nil || jctx.Err() != nil {
		// The job is cancelled (deadline, drain escalation) or already
		// finalising; resolve the shard without running it.
		s.resolveShard(t, false)
		return
	}

	t.attempts++
	s.mu.Lock()
	s.stats.Shards++
	s.mu.Unlock()
	lease := time.Now().Add(s.cfg.ShardLease)
	s.journalAppend(jb, journalKindLease, shardLeaseRec{
		ID: jb.id, Shard: t.idx, Lo: t.lo, Hi: t.hi, Attempt: t.attempts,
		Fingerprint: jb.fingerprint, Expires: stamp(lease),
	})

	sctx, cancel := context.WithDeadline(jctx, lease)
	results, statuses, err := s.solveShard(sctx, jb, t)
	cancel()

	// Merge whatever completed regardless of disposition: a lease-expired
	// attempt keeps its finished points, so the retry recomputes only the
	// remainder — and the snapshot write inside the merge is what makes a
	// completed point crash-durable.
	merged := s.mergeShard(jb, t, results, statuses)

	switch {
	case err == nil:
		s.journalAppend(jb, journalKindShardDone, shardDoneRec{
			ID: jb.id, Shard: t.idx, Lo: t.lo, Hi: t.hi,
			Points: merged, Fingerprint: jb.fingerprint,
		})
		s.resolveShard(t, false)
	case jctx.Err() != nil:
		// Job-level cancellation (deadline or drain), not a lease expiry:
		// the job finalises cancelled/snapshotted once all shards resolve.
		s.resolveShard(t, false)
	case t.attempts >= s.cfg.ShardAttempts:
		s.quarantineShard(t, err)
	default:
		s.requeueShard(t, err)
	}
}

// solveShard invokes the sweep hook for the shard's missing points, with
// panic isolation: a panicking solve quarantines its shard (eventually),
// never a worker.
func (s *Server) solveShard(ctx context.Context, jb *job, t *shardTask) (results []*mat.CMatrix, statuses []sparam.PointStatus, err error) {
	defer simerr.RecoverInto(&err, "serve: shard")
	jb.sweepMu.Lock()
	skip := append([]bool(nil), jb.done...)
	jb.sweepMu.Unlock()
	opts := sparam.SweepOptions{Z0: jb.sweep.Z0, Policy: s.cfg.Policy}
	return s.hooks.Sweep(ctx, jb.freqs, t.lo, t.hi, skip, opts, jb.network.PortZCtx)
}

// mergeShard folds one dispatch's results into the job — results/done under
// sweepMu, statuses under s.mu — then flushes a snapshot so the completed
// points become crash-durable before the shard-done record can be journaled.
// Returns how many new points completed.
func (s *Server) mergeShard(jb *job, t *shardTask, results []*mat.CMatrix, statuses []sparam.PointStatus) int {
	if results == nil && statuses == nil {
		return 0
	}
	type statusUpdate struct {
		i  int
		st sparam.PointStatus
	}
	var updates []statusUpdate
	merged := 0
	gen := 0
	jb.sweepMu.Lock()
	for k := range results {
		i := t.lo + k
		if results[k] != nil && !jb.done[i] {
			jb.results[i] = results[k]
			jb.done[i] = true
			merged++
		}
	}
	for k := range statuses {
		i := t.lo + k
		st := statuses[k]
		if st.Attempts == 0 && st.Err == nil {
			continue // skipped (already complete) or never attempted
		}
		// A point's status reflects the attempt that produced its value, or
		// its latest failure while it has none — never overwrite a completed
		// point's record with a later lease-cut error.
		if st.Err == nil || !jb.done[i] {
			updates = append(updates, statusUpdate{i: i, st: st})
		}
	}
	if merged > 0 {
		jb.snapGen++
		gen = jb.snapGen
	}
	jb.sweepMu.Unlock()

	s.mu.Lock()
	for _, u := range updates {
		jb.points[u.i] = u.st
	}
	s.mu.Unlock()
	if merged > 0 {
		s.flushSweepSnapshot(jb, fmt.Sprintf("shard %d", t.idx), gen)
	}
	return merged
}

// flushSweepSnapshot makes sweep generation gen durable and returns. The
// snapshot file is written with sweepMu RELEASED: holding a mutex across an
// fsync would stall every merge and skip-list read behind disk latency
// (pdnlint's lockhold analyzer flags exactly that shape). Durability is
// tracked by generation instead — each write claims snapWriting, captures
// the newest generation plus copies of done/results under the lock, writes
// outside it, and records what it captured in snapWritten. Concurrent
// callers racing a slow write wait on snapCond and usually find their
// generation already covered when it finishes: N merges coalesce into far
// fewer fsyncs under load, and each caller performs at most one write of
// its own. A failed write is reported through diag (results stay in memory
// only), matching the old in-lock behaviour.
func (s *Server) flushSweepSnapshot(jb *job, what string, gen int) {
	snapPath := s.snapshotPathFor(jb)
	if snapPath == "" {
		return
	}
	var saveErr error
	jb.sweepMu.Lock()
	if jb.snapCond == nil {
		jb.snapCond = sync.NewCond(&jb.sweepMu)
	}
	for jb.snapWritten < gen {
		if jb.snapWriting {
			jb.snapCond.Wait()
			continue
		}
		jb.snapWriting = true
		g := jb.snapGen
		freqs := jb.freqs
		z0 := jb.sweep.Z0
		done := append([]bool(nil), jb.done...)
		results := append([]*mat.CMatrix(nil), jb.results...)
		jb.sweepMu.Unlock()
		err := s.storageRetry(func() error { return s.saveSweep(snapPath, freqs, z0, done, results) })
		jb.sweepMu.Lock()
		jb.snapWriting = false
		if err == nil && g > jb.snapWritten {
			jb.snapWritten = g
		}
		jb.snapCond.Broadcast()
		if err != nil {
			saveErr = err
			break
		}
	}
	jb.sweepMu.Unlock()

	s.mu.Lock()
	if saveErr == nil {
		jb.snapshotPath = snapPath
	} else {
		jb.diag.Warnf("serve", "sweep snapshot", 0, 0, false,
			"%s snapshot write failed (results held in memory only): %v", what, saveErr)
		s.markNonDurableLocked(jb, fmt.Sprintf("sweep snapshot write failed: %v", saveErr))
	}
	s.mu.Unlock()
	if saveErr != nil {
		s.degradeOn("sweep snapshot write", saveErr)
	}
}

// resolveShard retires a shard from the outstanding count, crediting it as
// done unless quarantined, and finalises the job when it was the last one.
func (s *Server) resolveShard(t *shardTask, quarantined bool) {
	jb := t.jb
	s.mu.Lock()
	if quarantined {
		jb.shardsQuarantined++
		s.stats.Quarantined++
	} else {
		jb.shardsDone++
	}
	jb.shardsOutstanding--
	last := jb.shardsOutstanding == 0
	s.mu.Unlock()
	if last {
		s.finalizeSweep(jb)
	}
}

// requeueShard schedules another dispatch of a lease-expired (or panicked)
// shard after the supervision policy's jittered backoff — full jitter, so a
// burst of shards losing their leases together (one machine-wide stall)
// does not retry in lockstep against the pool.
func (s *Server) requeueShard(t *shardTask, cause error) {
	jb := t.jb
	delay := s.cfg.Policy.RetryDelay(t.attempts + 1)
	s.mu.Lock()
	s.stats.LeaseExpiries++
	jb.diag.Warnf("serve", "shard lease", float64(t.idx), 0, true,
		"shard %d (points %d..%d) dispatch %d cut off by its lease; requeued with %v backoff: %v",
		t.idx, t.lo, t.hi-1, t.attempts, delay.Round(time.Millisecond), cause)
	s.mu.Unlock()
	push := func() {
		s.mu.Lock()
		s.shardQ = append(s.shardQ, t)
		s.cond.Broadcast()
		s.mu.Unlock()
	}
	if delay <= 0 {
		push()
		return
	}
	time.AfterFunc(delay, push)
}

// quarantineShard retires a poison shard: its still-missing points are
// marked failed with the quarantine error, and the job completes partial
// (or cancelled/failed, as its other shards decide) instead of hanging on
// an unbounded retry loop.
func (s *Server) quarantineShard(t *shardTask, cause error) {
	jb := t.jb
	qerr := fmt.Errorf("serve: shard %d quarantined after %d dispatch attempts: %w",
		t.idx, t.attempts, cause)
	jb.sweepMu.Lock()
	var missing []int
	for i := t.lo; i < t.hi; i++ {
		if !jb.done[i] {
			missing = append(missing, i)
		}
	}
	jb.sweepMu.Unlock()
	s.mu.Lock()
	for _, i := range missing {
		jb.points[i] = sparam.PointStatus{Freq: jb.freqs[i], Attempts: t.attempts, Err: qerr}
	}
	jb.diag.Warnf("serve", "shard quarantine", float64(t.idx), 0, false,
		"shard %d (points %d..%d) quarantined after %d dispatch attempts, %d point(s) lost: %v",
		t.idx, t.lo, t.hi-1, t.attempts, len(missing), cause)
	s.mu.Unlock()
	s.resolveShard(t, true)
}

// finalizeSweep assembles a sweep job's terminal outcome once its last shard
// resolved: the Sweep from completed points, the touchstone, the
// supervision diagnostics trail, and the disposition error (nil / partial /
// cancelled / all-failed). On cancellation it flushes a final resumable
// snapshot first — the drain contract: an interrupted sweep lands
// "snapshotted", not lost.
func (s *Server) finalizeSweep(jb *job) {
	s.mu.Lock()
	jctx := jb.ctx
	s.mu.Unlock()
	cancelled := jctx == nil || jctx.Err() != nil
	snapPath := s.snapshotPathFor(jb)

	jb.sweepMu.Lock()
	n := len(jb.freqs)
	doneCount := 0
	sw := &sparam.Sweep{Z0: jb.sweep.Z0}
	for i := range jb.freqs {
		if jb.done[i] {
			doneCount++
			sw.Points = append(sw.Points, sparam.Point{Freq: jb.freqs[i], S: jb.results[i]})
		}
	}
	gen := 0
	if cancelled && snapPath != "" {
		jb.snapGen++
		gen = jb.snapGen
	}
	jb.sweepMu.Unlock()

	if cancelled {
		if gen > 0 {
			// The drain contract: flush a final resumable snapshot (outside
			// sweepMu — flushSweepSnapshot sets jb.snapshotPath on success)
			// so the interrupted sweep lands "snapshotted", not lost.
			s.flushSweepSnapshot(jb, "final", gen)
		}
		cause := context.Canceled
		if jctx != nil {
			cause = jctx.Err()
		}
		s.finalize(jb, &simerr.CancelledError{Op: "serve: sweep", Err: cause})
		return
	}

	s.mu.Lock()
	statuses := append([]sparam.PointStatus(nil), jb.points...)
	s.mu.Unlock()
	failed := n - doneCount
	var firstErr error
	for i := range statuses {
		if statuses[i].Err != nil {
			firstErr = statuses[i].Err
			break
		}
	}
	if failed == n {
		s.finalize(jb, fmt.Errorf("serve: sweep: every point failed: %w", firstErr))
		return
	}

	// Observation mode plus the supervision trail, exactly as
	// sparam.SweepZSupervised reports it: one Warning per skipped point,
	// one Info per point that needed retries.
	_ = sw.Verify()
	for _, st := range statuses {
		switch {
		case st.Err != nil:
			sw.Diag.Warnf("sparam", "skipped point", st.Freq, 0, false,
				"point at %g Hz failed after %d attempts and was skipped: %v", st.Freq, st.Attempts, st.Err)
		case st.Attempts > 1:
			sw.Diag.Infof("sparam", "retried point", st.Freq, 0,
				"point at %g Hz recovered on attempt %d (frequency perturbation %.3g)",
				st.Freq, st.Attempts, st.PerturbRel)
		}
	}
	ts, terr := sw.Touchstone(jb.spec.Name)
	if terr != nil {
		s.finalize(jb, terr)
		return
	}
	removeSnap := false
	s.mu.Lock()
	jb.touchstone = ts
	jb.diag.Merge(sw.Diag)
	if failed == 0 && jb.snapshotPath != "" {
		// The sweep completed fully; its interim snapshot is no longer
		// needed. A partial job keeps its snapshot: the failed points may
		// succeed on a resubmit-with-resume.
		removeSnap = true
		jb.snapshotPath = ""
	}
	s.mu.Unlock()
	if removeSnap {
		_ = os.Remove(snapPath)
	}
	if failed > 0 {
		s.finalize(jb, &simerr.PartialError{Op: "serve: sweep", Failed: failed, Total: n, Err: firstErr})
		return
	}
	s.finalize(jb, nil)
}

// snapshotPathFor is the job's sweep snapshot location ("" without a state
// directory). The id-derived name is what lets a recovered job (same id,
// same state dir) find its own pre-crash progress.
func (s *Server) snapshotPathFor(jb *job) string {
	if s.cfg.StateDir == "" {
		return ""
	}
	return filepath.Join(s.cfg.StateDir, jb.id+".sweep.ckpt")
}
