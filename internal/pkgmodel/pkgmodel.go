// Package pkgmodel provides the chip-package subsystem of the paper's §5.2:
// per-pin parasitic R-L-C subcircuits connecting die rails and signals to
// the board, plus closed-form estimators for bondwire and lead inductances.
package pkgmodel

import (
	"math"

	"pdnsim/internal/circuit"

	"pdnsim/internal/simerr"
)

// Pin holds the lumped parasitics of one package pin: series resistance and
// inductance from the board pad to the die pad, with a shunt capacitance at
// the die side.
type Pin struct {
	R float64 // series resistance (Ω)
	L float64 // series inductance (H)
	C float64 // die-side shunt capacitance to ground (F)
}

// Validate checks the pin parameters.
func (p Pin) Validate() error {
	if p.R < 0 || p.L < 0 || p.C < 0 {
		return simerr.Tagf(simerr.ErrBadInput, "pkgmodel: negative pin parasitics %+v", p)
	}
	if p.R == 0 && p.L == 0 {
		return simerr.Tagf(simerr.ErrBadInput, "pkgmodel: pin needs series R or L")
	}
	return nil
}

// Attach wires the pin between the board node and the die node. A small
// series resistance is always present (the solver needs no ideal L-only
// loops); the shunt capacitance lands on the die side.
func (p Pin) Attach(c *circuit.Circuit, name string, board, die int) error {
	if err := p.Validate(); err != nil {
		return err
	}
	r := p.R
	if r <= 0 {
		r = 1e-4
	}
	mid := c.Node(name + "_m")
	if _, err := c.AddResistor(name+"_r", board, mid, r); err != nil {
		return err
	}
	if _, err := c.AddInductor(name+"_l", mid, die, p.L); err != nil {
		return err
	}
	if p.C > 0 {
		if _, err := c.AddCapacitor(name+"_c", die, circuit.Ground, p.C); err != nil {
			return err
		}
	}
	return nil
}

// Preset package pin classes (typical mid-1990s values, as in the paper's
// application space).
var (
	// QFPPin is a quad-flat-pack lead: long lead frame, high inductance.
	QFPPin = Pin{R: 50e-3, L: 7e-9, C: 0.8e-12}
	// BGAPin is a ball-grid-array ball + short trace.
	BGAPin = Pin{R: 20e-3, L: 1.5e-9, C: 0.4e-12}
	// WirebondPin is a die bondwire only (chip-on-board).
	WirebondPin = Pin{R: 80e-3, L: 3e-9, C: 0.1e-12}
)

// BondwireL estimates the partial self-inductance of a round bondwire of
// length l and radius r (both metres): L = μ0·l/(2π)·(ln(2l/r) − 0.75).
func BondwireL(l, r float64) float64 {
	if l <= 0 || r <= 0 || r >= l {
		return 0
	}
	const mu0over2pi = 2e-7
	return mu0over2pi * l * (math.Log(2*l/r) - 0.75)
}

// LeadL estimates the partial self-inductance of a flat rectangular lead of
// length l, width w and thickness t: L = μ0·l/(2π)·(ln(2l/(w+t)) + 0.5).
func LeadL(l, w, t float64) float64 {
	if l <= 0 || w+t <= 0 {
		return 0
	}
	const mu0over2pi = 2e-7
	return mu0over2pi * l * (math.Log(2*l/(w+t)) + 0.5)
}

// ViaL estimates the partial self-inductance of a cylindrical via of length
// h and barrel diameter d (both metres), the standard closed form
// L = μ0·h/(2π)·(ln(4h/d) + 1). Vias connect pins and decaps to the plane
// pair; their inductance adds in series with the package pin.
func ViaL(h, d float64) float64 {
	if h <= 0 || d <= 0 || d >= 4*h {
		return 0
	}
	const mu0over2pi = 2e-7
	return mu0over2pi * h * (math.Log(4*h/d) + 1)
}

// RailPair attaches a Vdd pin and a Gnd pin for one chip: boardVdd → dieVdd
// and boardGnd → dieGnd, each through its own pin parasitics. Returns the
// die-side rail nodes it created.
func RailPair(c *circuit.Circuit, name string, boardVdd, boardGnd int, pin Pin) (dieVdd, dieGnd int, err error) {
	dieVdd = c.Node(name + "_dvdd")
	dieGnd = c.Node(name + "_dgnd")
	if err := pin.Attach(c, name+"_pvdd", boardVdd, dieVdd); err != nil {
		return 0, 0, err
	}
	if err := pin.Attach(c, name+"_pgnd", boardGnd, dieGnd); err != nil {
		return 0, 0, err
	}
	return dieVdd, dieGnd, nil
}
