package pkgmodel

import (
	"math"
	"testing"

	"pdnsim/internal/circuit"
)

func TestPinValidate(t *testing.T) {
	if err := (Pin{R: -1, L: 1e-9}).Validate(); err == nil {
		t.Fatal("negative R must error")
	}
	if err := (Pin{}).Validate(); err == nil {
		t.Fatal("all-zero pin must error")
	}
	if err := QFPPin.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := BGAPin.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := WirebondPin.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPinAttachDCDrop(t *testing.T) {
	c := circuit.New()
	board := c.Node("board")
	die := c.Node("die")
	if _, err := c.AddVSource("V1", board, circuit.Ground, circuit.DC(3.3)); err != nil {
		t.Fatal(err)
	}
	pin := Pin{R: 0.1, L: 2e-9, C: 1e-12}
	if err := pin.Attach(c, "p1", board, die); err != nil {
		t.Fatal(err)
	}
	// 33 mA load.
	if _, err := c.AddResistor("RL", die, circuit.Ground, 100); err != nil {
		t.Fatal(err)
	}
	x, err := c.OP()
	if err != nil {
		t.Fatal(err)
	}
	want := 3.3 * 100 / 100.1
	if v := circuit.NodeVoltage(x, die); math.Abs(v-want) > 1e-6 {
		t.Fatalf("die rail = %g want %g", v, want)
	}
}

func TestPinInductiveKick(t *testing.T) {
	// A current step through the pin produces L·di/dt droop at the die.
	c := circuit.New()
	board := c.Node("board")
	die := c.Node("die")
	if _, err := c.AddVSource("V1", board, circuit.Ground, circuit.DC(3.3)); err != nil {
		t.Fatal(err)
	}
	pin := Pin{R: 0.02, L: 5e-9}
	if err := pin.Attach(c, "p1", board, die); err != nil {
		t.Fatal(err)
	}
	// Switched load: 33 Ω engages at 1 ns.
	if _, err := c.AddSwitch("S1", die, circuit.Ground, 33, 1e9,
		func(tt float64) bool { return tt >= 1e-9 }); err != nil {
		t.Fatal(err)
	}
	res, err := c.Tran(circuit.TranOptions{Dt: 0.02e-9, Tstop: 6e-9})
	if err != nil {
		t.Fatal(err)
	}
	v := res.V(die)
	lo := math.Inf(1)
	for _, x := range v {
		lo = math.Min(lo, x)
	}
	if lo > 1.0 {
		t.Fatalf("expected a deep inductive droop, min = %g", lo)
	}
	// Settles back near the resistive divider value.
	want := 3.3 * 33 / 33.02
	if last := v[len(v)-1]; math.Abs(last-want) > 0.05 {
		t.Fatalf("post-droop settle = %g want %g", last, want)
	}
}

func TestBondwireL(t *testing.T) {
	// A 1 mm, 12.5 µm-radius bondwire is the classic ≈0.8–1 nH/mm.
	l := BondwireL(1e-3, 12.5e-6)
	if l < 0.6e-9 || l > 1.2e-9 {
		t.Fatalf("bondwire L = %g", l)
	}
	// Longer wire → more inductance, superlinear (log term).
	if BondwireL(2e-3, 12.5e-6) <= 2*l*0.99 {
		t.Fatal("bondwire inductance should grow slightly superlinearly")
	}
	if BondwireL(-1, 1e-6) != 0 || BondwireL(1e-3, 2e-3) != 0 {
		t.Fatal("invalid geometry must return 0")
	}
}

func TestLeadL(t *testing.T) {
	// A 10 mm QFP lead, 0.3 mm wide: several nH.
	l := LeadL(10e-3, 0.3e-3, 0.15e-3)
	if l < 5e-9 || l > 12e-9 {
		t.Fatalf("lead L = %g", l)
	}
	if LeadL(0, 1, 1) != 0 {
		t.Fatal("degenerate lead must return 0")
	}
}

func TestViaL(t *testing.T) {
	// A 1.6 mm board via with a 0.3 mm barrel: the classic ≈1 nH.
	l := ViaL(1.6e-3, 0.3e-3)
	if l < 0.7e-9 || l > 1.6e-9 {
		t.Fatalf("via L = %g", l)
	}
	// Thinner barrel → more inductance.
	if ViaL(1.6e-3, 0.15e-3) <= l {
		t.Fatal("thinner via must have more inductance")
	}
	if ViaL(0, 1e-3) != 0 || ViaL(1e-3, 0) != 0 || ViaL(1e-4, 1e-3) != 0 {
		t.Fatal("degenerate vias must return 0")
	}
}

func TestRailPair(t *testing.T) {
	c := circuit.New()
	bvdd := c.Node("bvdd")
	if _, err := c.AddVSource("V1", bvdd, circuit.Ground, circuit.DC(3.3)); err != nil {
		t.Fatal(err)
	}
	dieVdd, dieGnd, err := RailPair(c, "u1", bvdd, circuit.Ground, BGAPin)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddResistor("RL", dieVdd, dieGnd, 330); err != nil {
		t.Fatal(err)
	}
	x, err := c.OP()
	if err != nil {
		t.Fatal(err)
	}
	v := circuit.NodeVoltage(x, dieVdd) - circuit.NodeVoltage(x, dieGnd)
	if math.Abs(v-3.3*330/330.04) > 1e-3 {
		t.Fatalf("die rail differential = %g", v)
	}
	if circuit.NodeVoltage(x, dieGnd) <= 0 {
		t.Fatal("die ground should sit slightly above board ground under load")
	}
}
