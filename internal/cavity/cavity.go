// Package cavity implements the analytic cavity-resonator model of a
// rectangular power/ground plane pair: the classic double-cosine modal
// series for the port impedance matrix,
//
//	Z_ij(ω) = jωμ0·d/(a·b) · Σ_m Σ_n  ε_m·ε_n·f_mn(x_i,y_i)·f_mn(x_j,y_j)
//	                                  ─────────────────────────────────────
//	                                        k_mn² − k²(1 − j·δ_eff)
//
// with f_mn(x,y) = cos(mπx/a)·cos(nπy/b), k_mn² = (mπ/a)² + (nπ/b)², and
// k = ω√(μ0ε0εr). The m = n = 0 term reduces to the plate capacitance
// 1/(jωC). This closed form is exact for a lossless rectangular cavity with
// magnetic side walls — the same physics the BEM/quasi-static extraction
// approximates — so it serves as the independent reference curve where the
// paper plots measured S-parameters (Fig. 7).
package cavity

import (
	"math"

	"pdnsim/internal/greens"
	"pdnsim/internal/mat"

	"pdnsim/internal/simerr"
)

// Model is a rectangular plane-pair cavity.
type Model struct {
	A, B    float64 // plane dimensions (m)
	D       float64 // plane separation (m)
	EpsR    float64
	LossTan float64 // effective loss tangent (dielectric + smeared conductor loss)
	Modes   int     // series truncation per axis (default 40)

	ports []port
}

type port struct {
	name string
	x, y float64
	w, h float64
}

// New validates and builds a cavity model.
func New(a, b, d, epsR float64) (*Model, error) {
	if a <= 0 || b <= 0 || d <= 0 || epsR < 1 {
		return nil, simerr.Tagf(simerr.ErrBadInput, "cavity: invalid geometry a=%g b=%g d=%g epsR=%g", a, b, d, epsR)
	}
	return &Model{A: a, B: b, D: d, EpsR: epsR, LossTan: 1e-3, Modes: 40}, nil
}

// AddPort registers a port at (x, y) with a default footprint of 1/50 of
// the plane (a point port makes the modal self-term diverge
// logarithmically; real vias and probe pads have finite size).
func (m *Model) AddPort(name string, x, y float64) error {
	s := math.Min(m.A, m.B) / 50
	return m.AddPortSized(name, x, y, s, s)
}

// AddPortSized registers a port with an explicit w×h footprint, averaged
// over by the standard sinc factors.
func (m *Model) AddPortSized(name string, x, y, w, h float64) error {
	if x < 0 || x > m.A || y < 0 || y > m.B {
		return simerr.Tagf(simerr.ErrBadInput, "cavity: port %s at (%g,%g) outside the plane", name, x, y)
	}
	if w < 0 || h < 0 {
		return simerr.Tagf(simerr.ErrBadInput, "cavity: port %s has negative size", name)
	}
	m.ports = append(m.ports, port{name, x, y, w, h})
	return nil
}

// sincArgCut is the |x| below which sinc(x) is evaluated as its Taylor
// limit 1: the first neglected term is x²/6 ≈ 1e-25 at the cut, far below
// float64 round-off, while sin(x)/x itself is safe everywhere above it.
const sincArgCut = 1e-12

func sinc(x float64) float64 {
	if math.Abs(x) < sincArgCut {
		return 1
	}
	return math.Sin(x) / x
}

// NumPorts returns the registered port count.
func (m *Model) NumPorts() int { return len(m.ports) }

// Z returns the port impedance matrix at angular frequency omega.
func (m *Model) Z(omega float64) (*mat.CMatrix, error) {
	n := len(m.ports)
	if n == 0 {
		return nil, simerr.Tagf(simerr.ErrBadInput, "cavity: no ports")
	}
	if omega <= 0 {
		return nil, simerr.Tagf(simerr.ErrBadInput, "cavity: omega must be positive")
	}
	modes := m.Modes
	if modes <= 0 {
		modes = 40
	}
	k2 := complex(omega*omega*greens.Mu0*greens.Eps0*m.EpsR, 0) *
		complex(1, -m.LossTan)
	pref := complex(0, omega*greens.Mu0*m.D/(m.A*m.B))
	z := mat.CNew(n, n)
	// Precompute the cosine factors per port and mode index.
	cosX := make([][]float64, n)
	cosY := make([][]float64, n)
	for p, pt := range m.ports {
		cosX[p] = make([]float64, modes+1)
		cosY[p] = make([]float64, modes+1)
		for q := 0; q <= modes; q++ {
			kq := float64(q) * math.Pi
			cosX[p][q] = math.Cos(kq*pt.x/m.A) * sinc(kq*pt.w/(2*m.A))
			cosY[p][q] = math.Cos(kq*pt.y/m.B) * sinc(kq*pt.h/(2*m.B))
		}
	}
	for mi := 0; mi <= modes; mi++ {
		km := float64(mi) * math.Pi / m.A
		em := 1.0
		if mi > 0 {
			em = 2
		}
		for ni := 0; ni <= modes; ni++ {
			kn := float64(ni) * math.Pi / m.B
			en := 1.0
			if ni > 0 {
				en = 2
			}
			den := complex(km*km+kn*kn, 0) - k2
			coef := complex(em*en, 0) / den
			for i := 0; i < n; i++ {
				fi := cosX[i][mi] * cosY[i][ni]
				if fi == 0 {
					continue
				}
				for j := i; j < n; j++ {
					fj := cosX[j][mi] * cosY[j][ni]
					z.Add(i, j, coef*complex(fi*fj, 0))
				}
			}
		}
	}
	// Symmetrise (only the upper triangle was accumulated).
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := z.At(i, j) * pref
			z.Set(i, j, v)
			z.Set(j, i, v)
		}
	}
	return z, nil
}

// ResonantFrequency returns the analytic cavity mode frequency f_mn.
func (m *Model) ResonantFrequency(mi, ni int) float64 {
	v := greens.C0 / math.Sqrt(m.EpsR)
	return v / 2 * math.Hypot(float64(mi)/m.A, float64(ni)/m.B)
}
