package cavity

import (
	"math"
	"math/cmplx"
	"testing"

	"pdnsim/internal/greens"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(-1, 1, 1e-3, 4); err == nil {
		t.Fatal("negative dimension must error")
	}
	if _, err := New(1, 1, 1e-3, 0.5); err == nil {
		t.Fatal("epsR < 1 must error")
	}
}

func TestPortValidation(t *testing.T) {
	m, err := New(10e-3, 10e-3, 0.3e-3, 4.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddPort("P", 20e-3, 5e-3); err == nil {
		t.Fatal("out-of-plane port must error")
	}
	if _, err := m.Z(1e9); err == nil {
		t.Fatal("Z without ports must error")
	}
	if err := m.AddPort("P", 5e-3, 5e-3); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Z(-1); err == nil {
		t.Fatal("negative omega must error")
	}
	if m.NumPorts() != 1 {
		t.Fatal("port count")
	}
}

func TestDCLimitIsPlateCapacitance(t *testing.T) {
	a, b, d, epsR := 20e-3, 15e-3, 0.4e-3, 4.2
	m, err := New(a, b, d, epsR)
	if err != nil {
		t.Fatal(err)
	}
	m.LossTan = 0
	if err := m.AddPort("P", 7e-3, 5e-3); err != nil {
		t.Fatal(err)
	}
	f := 1e5 // far below the first resonance
	z, err := m.Z(2 * math.Pi * f)
	if err != nil {
		t.Fatal(err)
	}
	c := greens.Eps0 * epsR * a * b / d
	want := 1 / (2 * math.Pi * f * c)
	if e := math.Abs(cmplx.Abs(z.At(0, 0))-want) / want; e > 1e-3 {
		t.Fatalf("DC limit |Z| = %g want %g", cmplx.Abs(z.At(0, 0)), want)
	}
	if imag(z.At(0, 0)) >= 0 {
		t.Fatal("low-frequency plane must be capacitive")
	}
}

func TestResonantFrequency(t *testing.T) {
	m, _ := New(8e-3, 8e-3, 0.28e-3, 9.6)
	f10 := m.ResonantFrequency(1, 0)
	want := greens.C0 / math.Sqrt(9.6) / (2 * 8e-3) // ≈ 6.05 GHz
	if math.Abs(f10-want)/want > 1e-12 {
		t.Fatalf("f10 = %g want %g", f10, want)
	}
	f11 := m.ResonantFrequency(1, 1)
	if math.Abs(f11-want*math.Sqrt2)/f11 > 1e-12 {
		t.Fatalf("f11 = %g", f11)
	}
}

func TestImpedancePeaksAtCavityMode(t *testing.T) {
	m, err := New(20e-3, 20e-3, 0.5e-3, 4.5)
	if err != nil {
		t.Fatal(err)
	}
	m.LossTan = 2e-3
	if err := m.AddPort("P", 0.5e-3, 0.5e-3); err != nil {
		t.Fatal(err)
	}
	f10 := m.ResonantFrequency(1, 0)
	onPeak, err := m.Z(2 * math.Pi * f10)
	if err != nil {
		t.Fatal(err)
	}
	off, err := m.Z(2 * math.Pi * f10 * 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(onPeak.At(0, 0)) < 5*cmplx.Abs(off.At(0, 0)) {
		t.Fatalf("no resonance peak: on=%g off=%g",
			cmplx.Abs(onPeak.At(0, 0)), cmplx.Abs(off.At(0, 0)))
	}
}

func TestReciprocityAndSymmetry(t *testing.T) {
	m, err := New(16e-3, 12e-3, 0.3e-3, 4.5)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range [][2]float64{{2e-3, 2e-3}, {14e-3, 3e-3}, {8e-3, 10e-3}} {
		if err := m.AddPort(string(rune('A'+i)), p[0], p[1]); err != nil {
			t.Fatal(err)
		}
	}
	z, err := m.Z(2 * math.Pi * 3e9)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			if cmplx.Abs(z.At(i, j)-z.At(j, i)) > 1e-12*cmplx.Abs(z.At(i, i)) {
				t.Fatalf("Z not reciprocal at (%d,%d)", i, j)
			}
		}
	}
}

func TestModeConvergence(t *testing.T) {
	m, err := New(20e-3, 20e-3, 0.5e-3, 4.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddPort("P", 3e-3, 4e-3); err != nil {
		t.Fatal(err)
	}
	omega := 2 * math.Pi * 2.2e9
	m.Modes = 120
	ref, err := m.Z(omega)
	if err != nil {
		t.Fatal(err)
	}
	prevErr := math.Inf(1)
	for _, md := range []int{10, 20, 40, 80} {
		m.Modes = md
		z, err := m.Z(omega)
		if err != nil {
			t.Fatal(err)
		}
		e := cmplx.Abs(z.At(0, 0)-ref.At(0, 0)) / cmplx.Abs(ref.At(0, 0))
		if e > prevErr+1e-12 {
			t.Fatalf("mode series not converging: %d → %g (prev %g)", md, e, prevErr)
		}
		prevErr = e
	}
	if prevErr > 0.02 {
		t.Fatalf("series unconverged at 80 modes: %g", prevErr)
	}
}

// The analytic cavity and the BEM-extracted network describe the same
// structure; their input impedances must agree at low frequency. (The full
// frequency comparison is Experiment FIG7.)
func TestMatchesPlateCapacitanceOfBEM(t *testing.T) {
	m, err := New(20e-3, 20e-3, 0.5e-3, 4.5)
	if err != nil {
		t.Fatal(err)
	}
	m.LossTan = 0
	if err := m.AddPort("P", 10e-3, 10e-3); err != nil {
		t.Fatal(err)
	}
	z, err := m.Z(2 * math.Pi * 1e6)
	if err != nil {
		t.Fatal(err)
	}
	cCavity := 1 / (2 * math.Pi * 1e6 * cmplx.Abs(z.At(0, 0)))
	cPlate := greens.Eps0 * 4.5 * 400e-6 / 0.5e-3
	if e := math.Abs(cCavity-cPlate) / cPlate; e > 1e-3 {
		t.Fatalf("cavity C = %g vs plate %g", cCavity, cPlate)
	}
}
