package diag

import (
	"errors"
	"math"
	"strings"
	"sync"
	"testing"

	"pdnsim/internal/mat"
	"pdnsim/internal/simerr"
)

func TestNilCollectorIsNoOpSink(t *testing.T) {
	var d *Diagnostics
	d.Add(Diagnostic{Stage: "x"})
	d.Infof("s", "c", 1, 2, "msg")
	d.Warnf("s", "c", 1, 2, true, "msg")
	d.Errorf("s", "c", 1, 2, "msg")
	d.Merge(New())
	if d.Len() != 0 || d.Items() != nil {
		t.Fatal("nil collector must discard everything")
	}
	if _, ok := d.Worst(); ok {
		t.Fatal("nil collector has no worst severity")
	}
	if d.HasWarnings() {
		t.Fatal("nil collector has no warnings")
	}
}

func TestWorstAndHasWarnings(t *testing.T) {
	d := New()
	if _, ok := d.Worst(); ok {
		t.Fatal("empty collector must report no worst severity")
	}
	d.Infof("mat", "cond", 10, 1e8, "fine")
	if w, ok := d.Worst(); !ok || w != Info {
		t.Fatalf("Worst = %v, %v; want Info, true", w, ok)
	}
	if d.HasWarnings() {
		t.Fatal("Info-only collector must not report warnings")
	}
	d.Warnf("extract", "C symmetry", 1e-10, 1e-12, true, "symmetrised")
	d.Errorf("fdtd", "CFL", 1.5, 1, "unstable")
	if w, _ := d.Worst(); w != Error {
		t.Fatalf("Worst = %v; want Error", w)
	}
	if !d.HasWarnings() {
		t.Fatal("collector with Error must report warnings")
	}
}

func TestMergeCopiesAllRecords(t *testing.T) {
	a, b := New(), New()
	a.Infof("s1", "c1", 0, 0, "one")
	b.Warnf("s2", "c2", 0, 0, false, "two")
	b.Errorf("s3", "c3", 0, 0, "three")
	a.Merge(b)
	if a.Len() != 3 {
		t.Fatalf("merged Len = %d; want 3", a.Len())
	}
	// Merge must copy, not alias: mutating b afterwards leaves a unchanged.
	b.Infof("s4", "c4", 0, 0, "four")
	if a.Len() != 3 {
		t.Fatal("Merge must snapshot, not alias, the source")
	}
}

func TestRenderSeverityOrderAndVerbosity(t *testing.T) {
	d := New()
	d.Infof("mat", "cond", 3, 1e8, "healthy")
	d.Warnf("extract", "C symmetry", 1e-9, 1e-12, true, "symmetrised")
	d.Errorf("fdtd", "CFL margin", 1.2, 1, "over the Courant limit")

	quiet := d.Render(false)
	if strings.Contains(quiet, "healthy") {
		t.Fatal("non-verbose Render must hide Info records")
	}
	ei := strings.Index(quiet, "[error]")
	wi := strings.Index(quiet, "[warning]")
	if ei < 0 || wi < 0 || ei > wi {
		t.Fatalf("errors must render before warnings:\n%s", quiet)
	}
	if !strings.Contains(quiet, "(auto-repaired)") {
		t.Fatalf("repaired warning must be labelled:\n%s", quiet)
	}

	verbose := d.Render(true)
	if !strings.Contains(verbose, "[info] mat: cond: healthy") {
		t.Fatalf("verbose Render must include Info records:\n%s", verbose)
	}
	if New().Render(true) != "" {
		t.Fatal("empty collector must render to the empty string")
	}
}

func TestConcurrentAdd(t *testing.T) {
	d := New()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				d.Infof("s", "c", float64(j), 0, "n")
			}
		}()
	}
	wg.Wait()
	if d.Len() != 1600 {
		t.Fatalf("Len = %d; want 1600", d.Len())
	}
}

func symmetric3() *mat.Matrix {
	return mat.FromRows([][]float64{
		{4, 1, 0},
		{1, 3, 1},
		{0, 1, 5},
	})
}

func TestCheckSymmetricBands(t *testing.T) {
	// Clean matrix: no diagnostic, no error.
	d := New()
	if err := CheckSymmetric(d, "t", "M", symmetric3()); err != nil || d.Len() != 0 {
		t.Fatalf("clean symmetric matrix: err=%v len=%d", err, d.Len())
	}

	// Warn band: roundoff-scale asymmetry is symmetrised away.
	d = New()
	m := symmetric3()
	m.Set(0, 1, m.At(0, 1)+1e-10*m.MaxAbs())
	if err := CheckSymmetric(d, "t", "M", m); err != nil {
		t.Fatalf("warn-band asymmetry must not escalate: %v", err)
	}
	if w, _ := d.Worst(); w != Warning {
		t.Fatalf("warn-band asymmetry: worst = %v; want Warning", w)
	}
	if m.Asymmetry() > SymWarnTol {
		t.Fatalf("matrix must be repaired in place, asymmetry %g", m.Asymmetry())
	}
	items := d.Items()
	if !items[0].Repaired {
		t.Fatal("warn-band diagnostic must be marked repaired")
	}

	// Fail band: gross asymmetry escalates as ErrIllConditioned.
	d = New()
	m = symmetric3()
	m.Set(0, 1, 100)
	err := CheckSymmetric(d, "t", "M", m)
	if !errors.Is(err, simerr.ErrIllConditioned) {
		t.Fatalf("gross asymmetry must escalate to ErrIllConditioned, got %v", err)
	}
	if w, _ := d.Worst(); w != Error {
		t.Fatalf("fail-band asymmetry: worst = %v; want Error", w)
	}
}

func TestCheckPSDBands(t *testing.T) {
	// PD matrix: clean pass.
	d := New()
	if err := CheckPSD(d, "t", "M", symmetric3()); err != nil || d.Len() != 0 {
		t.Fatalf("PD matrix: err=%v len=%d", err, d.Len())
	}

	// Zero matrix is PSD.
	if err := CheckPSD(New(), "t", "Z", mat.New(3, 3)); err != nil {
		t.Fatalf("zero matrix must pass PSD: %v", err)
	}

	// Singular-but-PSD (graph Laplacian with ones-nullspace) passes.
	lap := mat.FromRows([][]float64{
		{1, -1, 0},
		{-1, 2, -1},
		{0, -1, 1},
	})
	if err := CheckPSD(New(), "t", "Γ", lap); err != nil {
		t.Fatalf("Laplacian must pass PSD: %v", err)
	}

	// Tiny negative eigenvalue: clipped in place, Warning recorded.
	d = New()
	m := symmetric3()
	vals, vecs, err := mat.JacobiEigen(m)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild with the smallest eigenvalue pushed slightly negative.
	lmax := math.Abs(vals[len(vals)-1])
	vals[0] = -lmax * EigClipRel * 10
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			var s float64
			for k, lk := range vals {
				s += vecs.At(i, k) * lk * vecs.At(j, k)
			}
			m.Set(i, j, s)
		}
	}
	m.Symmetrize()
	if err := CheckPSD(d, "t", "M", m); err != nil {
		t.Fatalf("tiny negative eigenvalue must be repaired, not escalated: %v", err)
	}
	if w, _ := d.Worst(); w != Warning {
		t.Fatalf("clip repair: worst = %v; want Warning", w)
	}
	rvals, _, err := mat.JacobiEigen(m)
	if err != nil {
		t.Fatal(err)
	}
	if rvals[0] < -EigClipRel*lmax {
		t.Fatalf("repaired matrix still indefinite: λmin = %g", rvals[0])
	}

	// Genuinely indefinite: escalates.
	d = New()
	ind := mat.FromRows([][]float64{
		{1, 0, 0},
		{0, -2, 0},
		{0, 0, 3},
	})
	err = CheckPSD(d, "t", "M", ind)
	if !errors.Is(err, simerr.ErrIllConditioned) {
		t.Fatalf("indefinite matrix must escalate to ErrIllConditioned, got %v", err)
	}
}

func TestCheckCondBands(t *testing.T) {
	d := New()
	if err := CheckCond(d, "t", "κ", 1e3); err != nil {
		t.Fatalf("healthy κ: %v", err)
	}
	if w, _ := d.Worst(); w != Info {
		t.Fatalf("healthy κ: worst = %v; want Info", w)
	}

	d = New()
	if err := CheckCond(d, "t", "κ", 1e10); err != nil {
		t.Fatalf("warn-band κ must not escalate: %v", err)
	}
	if w, _ := d.Worst(); w != Warning {
		t.Fatalf("warn-band κ: worst = %v; want Warning", w)
	}

	for _, cond := range []float64{1e15, math.Inf(1)} {
		d = New()
		err := CheckCond(d, "t", "κ", cond)
		if !errors.Is(err, simerr.ErrIllConditioned) {
			t.Fatalf("κ=%g must escalate to ErrIllConditioned, got %v", cond, err)
		}
		var ice *simerr.IllConditionedError
		if !errors.As(err, &ice) || ice.Value != cond {
			t.Fatalf("κ=%g: structured detail missing or wrong: %+v", cond, ice)
		}
	}
}

func TestTrustworthyDigits(t *testing.T) {
	for _, tc := range []struct {
		cond float64
		want int
	}{
		{0.5, 16}, {1, 16}, {1e4, 12}, {1e8, 8}, {1e16, 0}, {1e20, 0},
	} {
		if got := trustworthyDigits(tc.cond); got != tc.want {
			t.Errorf("trustworthyDigits(%g) = %d; want %d", tc.cond, got, tc.want)
		}
	}
}

func TestCheckResidualBands(t *testing.T) {
	d := New()
	if err := CheckResidual(d, "t", "res", 1e-14, 1e-9); err != nil {
		t.Fatalf("healthy residual: %v", err)
	}
	if w, _ := d.Worst(); w != Info {
		t.Fatalf("healthy residual: worst = %v; want Info", w)
	}

	d = New()
	if err := CheckResidual(d, "t", "res", 1e-8, 1e-9); err != nil {
		t.Fatalf("warn-band residual must not escalate: %v", err)
	}
	if w, _ := d.Worst(); w != Warning {
		t.Fatalf("warn-band residual: worst = %v; want Warning", w)
	}

	for _, relres := range []float64{1e-3, math.NaN()} {
		err := CheckResidual(New(), "t", "res", relres, 1e-9)
		if !errors.Is(err, simerr.ErrIllConditioned) {
			t.Fatalf("residual %g must escalate to ErrIllConditioned, got %v", relres, err)
		}
	}
}
