// Package diag collects structured numerical-trust diagnostics from every
// stage of the simulation pipeline. Each check that a stage runs — matrix
// symmetry, positive definiteness, condition estimates, solve residuals,
// S-parameter passivity/reciprocity, FDTD stability margins — records a
// Diagnostic with the measured value, the limit it was compared against, and
// whether the stage auto-repaired the violation (symmetrisation, eigenvalue
// clipping, iterative refinement) or merely observed it.
//
// The collector implements graceful degradation: below a stage's escalation
// threshold a violation becomes a Warning plus an automatic repair and the
// run continues; above it the stage returns a typed simerr error
// (ErrIllConditioned and friends) and the collector holds the quantitative
// trail explaining why. CLIs render the collector with Render so users see
// *why* a result is trustworthy, degraded, or refused.
package diag

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Severity ranks a diagnostic.
type Severity int

const (
	// Info records a passed check worth showing (e.g. a healthy condition
	// estimate or final residual).
	Info Severity = iota
	// Warning records a violated invariant that was repaired or is within
	// the degradation band: the run continued, the result is usable but
	// degraded.
	Warning
	// Error records a violation past the escalation threshold; the stage
	// also returned a typed error, the diagnostic preserves the numbers.
	Error
)

// String returns the lowercase name of the severity.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	default:
		return fmt.Sprintf("severity(%d)", int(s))
	}
}

// Diagnostic is one quantitative trust observation.
type Diagnostic struct {
	Stage    string   // pipeline stage, e.g. "extract", "fdtd", "sparam"
	Check    string   // what was measured, e.g. "C symmetry", "CFL margin"
	Severity Severity // how bad it is
	Message  string   // human-readable one-liner
	Value    float64  // measured quantity (NaN-free by construction)
	Limit    float64  // threshold it was compared against (0 if n/a)
	Repaired bool     // true when the stage auto-repaired the violation
}

func (d Diagnostic) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s] %s: %s", d.Severity, d.Stage, d.Check)
	if d.Message != "" {
		b.WriteString(": " + d.Message)
	}
	if d.Repaired {
		b.WriteString(" (auto-repaired)")
	}
	return b.String()
}

// Diagnostics is a concurrency-safe collector. The zero value is NOT ready;
// use New. A nil *Diagnostics is a valid no-op sink, so deep pipeline code
// can record unconditionally without nil checks at every call site.
type Diagnostics struct {
	mu    sync.Mutex
	items []Diagnostic
}

// New returns an empty collector.
func New() *Diagnostics { return &Diagnostics{} }

// Add records one diagnostic. Safe for concurrent use; a nil receiver
// discards the record.
func (d *Diagnostics) Add(item Diagnostic) {
	if d == nil {
		return
	}
	d.mu.Lock()
	d.items = append(d.items, item)
	d.mu.Unlock()
}

// Infof records an Info-level diagnostic with a formatted message.
func (d *Diagnostics) Infof(stage, check string, value, limit float64, format string, args ...any) {
	d.Add(Diagnostic{Stage: stage, Check: check, Severity: Info, Value: value, Limit: limit,
		Message: fmt.Sprintf(format, args...)})
}

// Warnf records a Warning-level diagnostic; repaired marks whether the stage
// fixed the violation in place.
func (d *Diagnostics) Warnf(stage, check string, value, limit float64, repaired bool, format string, args ...any) {
	d.Add(Diagnostic{Stage: stage, Check: check, Severity: Warning, Value: value, Limit: limit,
		Repaired: repaired, Message: fmt.Sprintf(format, args...)})
}

// Errorf records an Error-level diagnostic. The stage is expected to also
// return a typed simerr error; this call preserves the quantitative detail.
func (d *Diagnostics) Errorf(stage, check string, value, limit float64, format string, args ...any) {
	d.Add(Diagnostic{Stage: stage, Check: check, Severity: Error, Value: value, Limit: limit,
		Message: fmt.Sprintf(format, args...)})
}

// Items returns a copy of all recorded diagnostics in insertion order.
func (d *Diagnostics) Items() []Diagnostic {
	if d == nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]Diagnostic(nil), d.items...)
}

// Len reports the number of recorded diagnostics.
func (d *Diagnostics) Len() int {
	if d == nil {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.items)
}

// Worst returns the highest severity recorded, and false when empty.
func (d *Diagnostics) Worst() (Severity, bool) {
	if d == nil {
		return Info, false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 {
		return Info, false
	}
	worst := Info
	for _, it := range d.items {
		if it.Severity > worst {
			worst = it.Severity
		}
	}
	return worst, true
}

// HasWarnings reports whether any diagnostic is Warning or worse.
func (d *Diagnostics) HasWarnings() bool {
	w, ok := d.Worst()
	return ok && w >= Warning
}

// Merge appends every diagnostic from other (no-op for nil receivers or
// sources). Pipeline stages each keep a local collector that the driver
// merges into the run-level one.
func (d *Diagnostics) Merge(other *Diagnostics) {
	if d == nil || other == nil {
		return
	}
	for _, it := range other.Items() {
		d.Add(it)
	}
}

// Render formats the collected diagnostics for terminal output, grouped by
// severity (errors first) with stages in stable order inside each group.
// Info records are included only when verbose is set. Returns "" when there
// is nothing to show.
func (d *Diagnostics) Render(verbose bool) string {
	items := d.Items()
	if !verbose {
		filtered := items[:0]
		for _, it := range items {
			if it.Severity >= Warning {
				filtered = append(filtered, it)
			}
		}
		items = filtered
	}
	if len(items) == 0 {
		return ""
	}
	sort.SliceStable(items, func(i, j int) bool { return items[i].Severity > items[j].Severity })
	var b strings.Builder
	b.WriteString("diagnostics:\n")
	for _, it := range items {
		b.WriteString("  " + it.String() + "\n")
	}
	return b.String()
}
