package diag

import (
	"math"

	"pdnsim/internal/mat"
	"pdnsim/internal/simerr"
)

// Default degradation thresholds. Below the warn threshold a check passes
// silently (or records Info); between warn and fail it warns and repairs;
// past fail it escalates to a typed simerr error.
const (
	// SymWarnTol is the relative asymmetry above which a nominally
	// symmetric physical matrix (Maxwell capacitance, inverse-inductance
	// Laplacian) is repaired by symmetrisation and a warning recorded.
	SymWarnTol = 1e-12
	// SymFailTol is the relative asymmetry past which the matrix is not a
	// plausible discretisation artefact anymore but a broken assembly.
	SymFailTol = 1e-6
	// CondWarn is the condition estimate above which solves are flagged as
	// degraded (roughly half the double-precision budget spent on κ).
	CondWarn = 1e8
	// CondFail is the condition estimate past which solve output carries no
	// trustworthy digits and the stage refuses to continue.
	CondFail = 1e14
	// EigClipRel is the relative eigenvalue floor used when repairing an
	// indefinite matrix that should be PSD: eigenvalues below
	// -EigClipRel·λmax escalate, small negatives are clipped to zero.
	EigClipRel = 1e-9
	// ResidualWarnFloor is the tightest residual warn limit CheckResidual
	// will enforce: one decade above mat.RefineTarget, the stopping point
	// of iterative refinement. A caller-supplied warnAt below this floor
	// would warn on residuals the solver cannot beat even in principle, so
	// CheckResidual clamps up to it.
	ResidualWarnFloor = 10 * mat.RefineTarget
)

// CheckSymmetric verifies that m (a physically symmetric operator) is
// numerically symmetric. Asymmetry in (SymWarnTol, SymFailTol] is repaired
// in place by symmetrisation and recorded as a repaired Warning; beyond
// SymFailTol it records an Error and returns ErrIllConditioned. stage/check
// name the caller for the diagnostic trail.
func CheckSymmetric(d *Diagnostics, stage, check string, m *mat.Matrix) error {
	asym := m.Asymmetry()
	switch {
	case math.IsInf(asym, 1):
		d.Errorf(stage, check, asym, SymFailTol, "matrix is not square")
		return &simerr.IllConditionedError{Op: stage, Quantity: check + " asymmetry", Value: asym, Limit: SymFailTol}
	case asym > SymFailTol:
		d.Errorf(stage, check, asym, SymFailTol,
			"relative asymmetry %.3g exceeds %.3g; assembly is inconsistent", asym, SymFailTol)
		return &simerr.IllConditionedError{Op: stage, Quantity: check + " asymmetry", Value: asym, Limit: SymFailTol}
	case asym > SymWarnTol:
		m.Symmetrize()
		d.Warnf(stage, check, asym, SymWarnTol, true,
			"relative asymmetry %.3g symmetrised away", asym)
	}
	return nil
}

// CheckPSD verifies that a symmetric matrix is positive semidefinite within
// roundoff. Small negative eigenvalues (≥ -EigClipRel·λmax) are clipped to
// zero by reconstructing m from the repaired spectrum and recorded as a
// repaired Warning; a genuinely negative spectrum records an Error and
// returns ErrIllConditioned. minEig is an allowance for intentionally
// singular operators (Laplacians with a ones-nullspace pass with minEig 0).
// m must already be symmetric (run CheckSymmetric first).
func CheckPSD(d *Diagnostics, stage, check string, m *mat.Matrix) error {
	return CheckPSDScaled(d, stage, check, m, 0)
}

// CheckPSDScaled is CheckPSD with an external reference scale for the
// roundoff thresholds. A reduced operator that is exactly singular in exact
// arithmetic (a Schur complement of a Laplacian onto its nullspace support)
// comes out as pure cancellation noise proportional to the magnitude of the
// *unreduced* matrix; judging its spectrum relative to its own λmax — itself
// noise — is degenerate and fails on a sign flip. Callers that reduce an
// operator pass the unreduced matrix magnitude (e.g. mat.NormInf of the full
// system) as scale; thresholds then use max(λmax, scale). scale <= 0 falls
// back to plain CheckPSD behaviour.
func CheckPSDScaled(d *Diagnostics, stage, check string, m *mat.Matrix, scale float64) error {
	if m.Rows != m.Cols || m.Rows == 0 {
		return nil
	}
	vals, vecs, err := mat.JacobiEigen(m)
	if err != nil {
		// Not diagnosable (e.g. asymmetric beyond Jacobi's tolerance):
		// record and move on rather than failing the pipeline on the
		// checker's own limitation.
		d.Warnf(stage, check, 0, 0, false, "PSD check skipped: %v", err)
		return nil
	}
	lmax := math.Max(math.Abs(vals[0]), math.Abs(vals[len(vals)-1]))
	if lmax == 0 {
		return nil // zero matrix is PSD
	}
	lref := math.Max(lmax, scale)
	lmin := vals[0] // ascending order
	switch {
	case lmin < -EigClipRel*lref*1e3:
		d.Errorf(stage, check, lmin, 0,
			"negative eigenvalue %.3g (λmax %.3g); operator is not PSD", lmin, lmax)
		return &simerr.IllConditionedError{Op: stage, Quantity: check + " min eigenvalue", Value: lmin, Limit: 0}
	case lmin < -EigClipRel*lref:
		clipEigenvalues(m, vals, vecs)
		d.Warnf(stage, check, lmin, 0, true,
			"eigenvalue %.3g clipped to zero (λmax %.3g)", lmin, lmax)
	}
	return nil
}

// clipEigenvalues rebuilds m = V·diag(max(λ,0))·Vᵀ in place.
func clipEigenvalues(m *mat.Matrix, vals []float64, vecs *mat.Matrix) {
	n := m.Rows
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k, lk := range vals {
				if lk <= 0 {
					continue
				}
				s += vecs.At(i, k) * lk * vecs.At(j, k)
			}
			m.Set(i, j, s)
		}
	}
}

// CheckCond records the conditioning of a factorised system. κ below
// CondWarn records Info; in (CondWarn, CondFail] a Warning (callers are
// expected to refine); past CondFail an Error plus ErrIllConditioned.
func CheckCond(d *Diagnostics, stage, check string, cond float64) error {
	switch {
	case math.IsInf(cond, 1) || cond > CondFail:
		d.Errorf(stage, check, cond, CondFail,
			"condition estimate %.3g exceeds %.3g; no trustworthy digits remain", cond, CondFail)
		return &simerr.IllConditionedError{Op: stage, Quantity: check, Value: cond, Limit: CondFail}
	case cond > CondWarn:
		d.Warnf(stage, check, cond, CondWarn, false,
			"condition estimate %.3g; expect ≤ %d trustworthy digits", cond, trustworthyDigits(cond))
	default:
		d.Infof(stage, check, cond, CondWarn, "condition estimate %.3g", cond)
	}
	return nil
}

// trustworthyDigits estimates remaining decimal digits: 16 − log10 κ.
func trustworthyDigits(cond float64) int {
	if cond <= 1 {
		return 16
	}
	dig := 16 - int(math.Ceil(math.Log10(cond)))
	if dig < 0 {
		dig = 0
	}
	return dig
}

// CheckResidual records a solve's relative residual. Residuals at or below
// warnAt record Info; above it a Warning (the solution is degraded); above
// 1e3·warnAt an Error plus ErrIllConditioned — the "solution" failed to
// solve the system in any meaningful sense. warnAt is clamped up to
// ResidualWarnFloor: limits below refinement's own stopping target are
// unenforceable.
func CheckResidual(d *Diagnostics, stage, check string, relres, warnAt float64) error {
	if warnAt < ResidualWarnFloor {
		warnAt = ResidualWarnFloor
	}
	failAt := warnAt * 1e3
	switch {
	case math.IsNaN(relres) || relres > failAt:
		d.Errorf(stage, check, relres, failAt, "relative residual %.3g exceeds %.3g", relres, failAt)
		return &simerr.IllConditionedError{Op: stage, Quantity: check, Value: relres, Limit: failAt}
	case relres > warnAt:
		d.Warnf(stage, check, relres, warnAt, false, "relative residual %.3g above target %.3g", relres, warnAt)
	default:
		d.Infof(stage, check, relres, warnAt, "relative residual %.3g", relres)
	}
	return nil
}
