// Package eye folds transient waveforms into eye diagrams and measures
// their openings — the standard deliverable of system-level signal
// integrity simulation (the paper's §5.2 co-simulation exists to predict
// exactly these margins: how much SSN, crosstalk, reflections and
// bandwidth loss close the data eye).
package eye

import (
	"math"
	"math/rand"

	"pdnsim/internal/circuit"

	"pdnsim/internal/simerr"
)

// Result is the measured eye opening.
type Result struct {
	Period    float64
	EyeHeight float64 // best vertical opening across the unit interval (V)
	EyeWidth  float64 // contiguous span where the opening stays above half the best (s)
	BestPhase float64 // phase (s into the UI) of the best opening
	Bins      int
	// Opening per phase bin (V); ≤0 where the eye is closed.
	Opening []float64
}

// Analyze folds (t, v) at the given bit period and measures the eye between
// the logic levels vLow/vHigh. skip discards the start-up transient. The
// waveform must span at least three bit periods after skip.
func Analyze(t, v []float64, period, vLow, vHigh, skip float64) (*Result, error) {
	if len(t) != len(v) || len(t) < 8 {
		return nil, simerr.Tagf(simerr.ErrBadInput, "eye: need matched, non-trivial waveforms")
	}
	if period <= 0 || vHigh <= vLow {
		return nil, simerr.Tagf(simerr.ErrBadInput, "eye: invalid period %g or levels [%g, %g]", period, vLow, vHigh)
	}
	if t[len(t)-1]-skip < 3*period {
		return nil, simerr.Tagf(simerr.ErrBadInput, "eye: waveform too short for the bit period")
	}
	// Pick the phase resolution from the sampling density: more bins than
	// samples per unit interval would leave empty bins that read as closed.
	dt := (t[len(t)-1] - t[0]) / float64(len(t)-1)
	bins := int(period / dt / 2)
	if bins > 128 {
		bins = 128
	}
	if bins < 8 {
		bins = 8
	}
	mid := (vLow + vHigh) / 2
	minHigh := make([]float64, bins)
	maxLow := make([]float64, bins)
	hasHigh := make([]bool, bins)
	hasLow := make([]bool, bins)
	for i := range minHigh {
		minHigh[i] = math.Inf(1)
		maxLow[i] = math.Inf(-1)
	}
	for i, tt := range t {
		if tt < skip {
			continue
		}
		phase := math.Mod(tt-skip, period)
		b := int(phase / period * float64(bins))
		if b >= bins {
			b = bins - 1
		}
		if v[i] >= mid {
			hasHigh[b] = true
			minHigh[b] = math.Min(minHigh[b], v[i])
		} else {
			hasLow[b] = true
			maxLow[b] = math.Max(maxLow[b], v[i])
		}
	}
	res := &Result{Period: period, Bins: bins, Opening: make([]float64, bins)}
	for b := 0; b < bins; b++ {
		switch {
		case hasHigh[b] && hasLow[b]:
			res.Opening[b] = minHigh[b] - maxLow[b]
		case hasHigh[b]:
			res.Opening[b] = minHigh[b] - vLow
		case hasLow[b]:
			res.Opening[b] = vHigh - maxLow[b]
		default:
			res.Opening[b] = 0
		}
	}
	// Best opening and the contiguous open width around it (circular).
	best := 0
	for b := 1; b < bins; b++ {
		if res.Opening[b] > res.Opening[best] {
			best = b
		}
	}
	res.EyeHeight = math.Max(0, res.Opening[best])
	res.BestPhase = (float64(best) + 0.5) / float64(bins) * period
	// Width at half height: the contiguous phase span (circular, around the
	// best instant) where the opening stays above EyeHeight/2.
	if res.EyeHeight > 0 {
		threshold := res.EyeHeight / 2
		open := 1
		for d := 1; d < bins; d++ {
			if res.Opening[(best+d)%bins] < threshold {
				break
			}
			open++
		}
		for d := 1; d < bins; d++ {
			if res.Opening[(best-d+bins)%bins] < threshold {
				break
			}
			open++
		}
		if open > bins {
			open = bins
		}
		res.EyeWidth = float64(open) / float64(bins) * period
	}
	return res, nil
}

// PRBS returns a pseudo-random bit sequence of length n from a seeded
// generator (deterministic for reproducible tests and benches).
func PRBS(n int, seed int64) []bool {
	rng := rand.New(rand.NewSource(seed))
	bits := make([]bool, n)
	for i := range bits {
		bits[i] = rng.Intn(2) == 1
	}
	return bits
}

// BitWaveform builds a PWL source waveform from a bit pattern: each bit
// lasts period seconds with the given 10–90 % style edge time, swinging
// between vLow and vHigh.
func BitWaveform(bits []bool, period, edge, vLow, vHigh float64) (circuit.PWL, error) {
	if len(bits) == 0 || period <= 0 || edge <= 0 || edge >= period {
		return circuit.PWL{}, simerr.Tagf(simerr.ErrBadInput, "eye: invalid bit waveform parameters")
	}
	level := func(b bool) float64 {
		if b {
			return vHigh
		}
		return vLow
	}
	var ts, vs []float64
	ts = append(ts, 0)
	vs = append(vs, level(bits[0]))
	for i := 1; i < len(bits); i++ {
		if bits[i] == bits[i-1] {
			continue
		}
		t0 := float64(i) * period
		ts = append(ts, t0, t0+edge)
		vs = append(vs, level(bits[i-1]), level(bits[i]))
	}
	end := float64(len(bits)) * period
	ts = append(ts, end)
	vs = append(vs, level(bits[len(bits)-1]))
	return circuit.NewPWL(ts, vs)
}
