package eye

import (
	"math"
	"testing"

	"pdnsim/internal/circuit"
)

func TestAnalyzeValidation(t *testing.T) {
	if _, err := Analyze([]float64{0}, []float64{0}, 1, 0, 1, 0); err == nil {
		t.Fatal("short waveform must error")
	}
	tt := make([]float64, 100)
	vv := make([]float64, 100)
	for i := range tt {
		tt[i] = float64(i) * 1e-9
	}
	if _, err := Analyze(tt, vv, -1, 0, 1, 0); err == nil {
		t.Fatal("bad period must error")
	}
	if _, err := Analyze(tt, vv, 1e-9, 1, 0, 0); err == nil {
		t.Fatal("inverted levels must error")
	}
	if _, err := Analyze(tt[:10], vv[:10], 1e-6, 0, 1, 0); err == nil {
		t.Fatal("too few periods must error")
	}
}

func TestBitWaveform(t *testing.T) {
	w, err := BitWaveform([]bool{false, true, true, false}, 1e-9, 0.1e-9, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if v := w.At(0.5e-9); v != 0 {
		t.Fatalf("bit 0 = %g", v)
	}
	if v := w.At(1.5e-9); v != 3 {
		t.Fatalf("bit 1 = %g", v)
	}
	if v := w.At(2.5e-9); v != 3 {
		t.Fatalf("bit 2 = %g", v)
	}
	if v := w.At(3.5e-9); v != 0 {
		t.Fatalf("bit 3 = %g", v)
	}
	// Mid-edge value.
	if v := w.At(1e-9 + 0.05e-9); math.Abs(v-1.5) > 1e-9 {
		t.Fatalf("edge midpoint = %g", v)
	}
	if _, err := BitWaveform(nil, 1e-9, 0.1e-9, 0, 1); err == nil {
		t.Fatal("empty bits must error")
	}
	if _, err := BitWaveform([]bool{true}, 1e-9, 2e-9, 0, 1); err == nil {
		t.Fatal("edge ≥ period must error")
	}
}

func TestPRBSDeterministic(t *testing.T) {
	a := PRBS(64, 7)
	b := PRBS(64, 7)
	ones := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("PRBS must be deterministic per seed")
		}
		if a[i] {
			ones++
		}
	}
	if ones < 16 || ones > 48 {
		t.Fatalf("implausible bit balance: %d/64", ones)
	}
}

// idealEye: a clean PWL bit stream must show a nearly full-swing eye.
func TestAnalyzeIdealPattern(t *testing.T) {
	period := 1e-9
	bits := PRBS(60, 3)
	w, err := BitWaveform(bits, period, 0.1e-9, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	var ts, vs []float64
	for tt := 0.0; tt < 60e-9; tt += 0.01e-9 {
		ts = append(ts, tt)
		vs = append(vs, w.At(tt))
	}
	res, err := Analyze(ts, vs, period, 0, 1, 2e-9)
	if err != nil {
		t.Fatal(err)
	}
	if res.EyeHeight < 0.95 {
		t.Fatalf("ideal eye height = %g", res.EyeHeight)
	}
	// Edges consume ~10 % of the UI on each side.
	if res.EyeWidth < 0.7*period || res.EyeWidth > period {
		t.Fatalf("ideal eye width = %g", res.EyeWidth)
	}
}

// runChannel drives a PRBS through an RC-limited channel and measures the
// eye at the far end.
func runChannel(t *testing.T, period float64, rcTau float64) *Result {
	t.Helper()
	bits := PRBS(50, 11)
	w, err := BitWaveform(bits, period, period/10, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	c := circuit.New()
	in := c.Node("in")
	out := c.Node("out")
	if _, err := c.AddVSource("V1", in, circuit.Ground, w); err != nil {
		t.Fatal(err)
	}
	r := 50.0
	if _, err := c.AddResistor("R1", in, out, r); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddCapacitor("C1", out, circuit.Ground, rcTau/r); err != nil {
		t.Fatal(err)
	}
	res, err := c.Tran(circuit.TranOptions{
		Dt: period / 100, Tstop: 50 * period, Method: circuit.Trapezoidal,
	})
	if err != nil {
		t.Fatal(err)
	}
	eyeRes, err := Analyze(res.Time, res.V(out), period, 0, 1, 5*period)
	if err != nil {
		t.Fatal(err)
	}
	return eyeRes
}

func TestEyeClosesWithBandwidthLimit(t *testing.T) {
	period := 1e-9
	fast := runChannel(t, period, 0.05e-9) // τ ≪ UI: open eye
	slow := runChannel(t, period, 0.5e-9)  // τ = UI/2: ISI closes it
	if fast.EyeHeight < 0.9 {
		t.Fatalf("fast channel eye = %g", fast.EyeHeight)
	}
	if slow.EyeHeight >= fast.EyeHeight {
		t.Fatalf("ISI must close the eye: %g vs %g", slow.EyeHeight, fast.EyeHeight)
	}
	if slow.EyeWidth >= fast.EyeWidth {
		t.Fatalf("ISI must narrow the eye: %g vs %g", slow.EyeWidth, fast.EyeWidth)
	}
}

// Through a matched transmission line the eye stays open and the best
// sampling instant shifts by the line delay (mod the bit period).
func TestEyeThroughMatchedLine(t *testing.T) {
	period := 1e-9
	bits := PRBS(50, 23)
	w, err := BitWaveform(bits, period, 0.1e-9, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	c := circuit.New()
	src := c.Node("src")
	in := c.Node("in")
	out := c.Node("out")
	if _, err := c.AddVSource("V1", src, circuit.Ground, w); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddResistor("Rs", src, in, 50); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddTLine("T1", in, circuit.Ground, out, circuit.Ground, 50, 1.3e-9); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddResistor("Rl", out, circuit.Ground, 50); err != nil {
		t.Fatal(err)
	}
	res, err := c.Tran(circuit.TranOptions{Dt: 0.01e-9, Tstop: 50e-9})
	if err != nil {
		t.Fatal(err)
	}
	// Far-end levels are halved by the source divider (0 … 0.5 V).
	eyeRes, err := Analyze(res.Time, res.V(out), period, 0, 0.5, 5e-9)
	if err != nil {
		t.Fatal(err)
	}
	if eyeRes.EyeHeight < 0.45 {
		t.Fatalf("matched line eye = %g", eyeRes.EyeHeight)
	}
}
