// Package checkpoint persists the state of long-running solver loops —
// transient time marching, FDTD leapfrogging, frequency sweeps — so a run
// killed partway (SIGTERM, crash, timeout) can resume from its last snapshot
// instead of starting over. The paper's flow is dominated by exactly such
// loops (per-ω extraction sweeps, §5 time-domain SSN validation), and a
// multi-hour production run must not be all-or-nothing.
//
// Snapshots are:
//
//   - versioned: the envelope carries a schema Version and a Kind string
//     ("tran", "fdtd", "sweep"); loading a snapshot from a different schema
//     or of the wrong kind fails with a simerr.ErrBadInput-class error
//     instead of silently resuming garbage state;
//   - checksummed: the payload carries a CRC-32C; any bit flip or truncation
//     is detected at load time and reported as simerr.ErrBadInput;
//   - atomically written: the file is staged as path+".tmp", synced, and
//     renamed over the target, so a crash mid-write leaves either the old
//     snapshot or the new one, never a torn file.
//
// The engines own their payload schemas (what exactly a "tran" snapshot
// holds); this package owns the envelope, integrity, and cadence (Policy).
package checkpoint

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"math"
	"path/filepath"

	"pdnsim/internal/simerr"
)

// SameBits reports exact (bitwise) float64 equality. Resume validation
// compares the run configuration a snapshot came from against the current
// one on bit patterns — the contract is "identical run", not "close enough",
// so no tolerance is involved.
func SameBits(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

// Magic identifies a pdnsim checkpoint file.
const Magic = "pdnsim-checkpoint"

// Version is the envelope schema version. Bump it when the envelope or any
// engine payload changes incompatibly; Load rejects mismatches as
// simerr.ErrBadInput so an old binary never misinterprets a new snapshot
// (or vice versa).
const Version = 1

// DefaultEvery is the default snapshot cadence when a Policy enables
// checkpointing without choosing one: every 1000 accepted steps/points. At
// typical per-step solve costs this keeps snapshot overhead well under a
// percent while bounding lost work to seconds.
const DefaultEvery = 1000

// ResumeRelTol is the documented resume-determinism contract: a run resumed
// from a snapshot must match the uninterrupted run's waveforms within this
// relative tolerance. Snapshots round-trip float64 state exactly (JSON uses
// shortest-round-trip formatting) and the engines restore every state
// variable the arithmetic depends on, so in practice resumed runs are
// bitwise identical; the tolerance budgets only for future schema additions
// that may legitimately re-derive cached values. Fault-injection tests
// enforce it.
const ResumeRelTol = 1e-12

// Policy configures periodic checkpointing of a long run. The zero value
// disables checkpointing.
type Policy struct {
	// Path is the snapshot file. Empty disables checkpointing.
	Path string
	// Every is the number of accepted steps (transient, FDTD) or completed
	// points (sweeps) between snapshots. Zero or negative selects
	// DefaultEvery.
	Every int
}

// Enabled reports whether the policy writes snapshots.
func (p Policy) Enabled() bool { return p.Path != "" }

// Stride returns the effective snapshot cadence.
func (p Policy) Stride() int {
	if p.Every <= 0 {
		return DefaultEvery
	}
	return p.Every
}

// Due reports whether a snapshot is due after completing step n (1-based).
func (p Policy) Due(n int) bool {
	return p.Enabled() && n > 0 && n%p.Stride() == 0
}

// Corrupt classifies a Load failure: true for an integrity or schema
// violation of the file itself (bit flip, truncation, magic/version/kind
// mismatch, undecodable payload — the simerr.ErrBadInput-class failures),
// false for a filesystem failure (missing file, permissions) or any other
// error. Callers holding *caches* of recomputable state branch on this to
// degrade gracefully: a corrupt cache entry is evicted and recomputed with a
// repaired-warning, while a filesystem failure is surfaced — deleting a file
// because the disk hiccuped would throw away good state.
func Corrupt(err error) bool {
	var pe *fs.PathError
	if errors.As(err, &pe) {
		return false
	}
	return errors.Is(err, simerr.ErrBadInput)
}

// envelope is the on-disk framing around an engine payload.
type envelope struct {
	Magic   string          `json:"magic"`
	Version int             `json:"version"`
	Kind    string          `json:"kind"`
	CRC     uint32          `json:"crc32c"`
	Payload json.RawMessage `json:"payload"`
}

// castagnoli is the CRC-32C table (the Castagnoli polynomial has better
// error-detection properties than IEEE and hardware support on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Save atomically writes payload as a snapshot of the given kind: the
// payload is JSON-encoded, checksummed, framed in the versioned envelope,
// staged at path+".tmp", synced, renamed over path, and sealed with a parent
// directory fsync — the rename lives in the directory, and without syncing
// it a crash can lose the just-published file entirely even though its bytes
// were durable. Filesystem failures surface with their *fs.PathError cause
// preserved (%w) so the CLI layer maps them to its I/O exit code.
func Save(path, kind string, payload any) error {
	if path == "" {
		return simerr.BadInput("checkpoint: save", "empty snapshot path")
	}
	body, err := json.Marshal(payload)
	if err != nil {
		return &simerr.BadInputError{Op: "checkpoint: save", Detail: "payload not serialisable", Err: err}
	}
	env := envelope{
		Magic:   Magic,
		Version: Version,
		Kind:    kind,
		CRC:     crc32.Checksum(body, castagnoli),
		Payload: body,
	}
	blob, err := json.Marshal(&env)
	if err != nil {
		return &simerr.BadInputError{Op: "checkpoint: save", Detail: "envelope not serialisable", Err: err}
	}
	fsys := filesystem()
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, osWriteFlags, 0o644)
	if err != nil {
		return fmt.Errorf("checkpoint: save: %w", err)
	}
	if _, err := f.Write(blob); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("checkpoint: save: %w", err)
	}
	// Sync before rename: the rename must never become visible ahead of the
	// data it points at, or a crash window could expose a torn snapshot.
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("checkpoint: save: %w", err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("checkpoint: save: %w", err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("checkpoint: save: %w", err)
	}
	if err := fsys.SyncDir(filepath.Dir(path)); err != nil {
		// The file content is durable but its directory entry may not be: a
		// crash here could resurface the old snapshot. Callers treating Save
		// as a durability barrier must see the failure.
		return fmt.Errorf("checkpoint: save: %w", err)
	}
	return nil
}

// Load reads a snapshot of the given kind into payload, verifying the magic
// string, schema version, kind, and payload checksum. Every integrity or
// schema failure — torn file, bit flip, truncation, version or kind
// mismatch — is a simerr.ErrBadInput-class error; a resume must never panic
// or silently continue from garbage. Filesystem failures (missing file,
// permissions) keep their *fs.PathError cause.
func Load(path, kind string, payload any) error {
	blob, err := filesystem().ReadFile(path)
	if err != nil {
		return fmt.Errorf("checkpoint: load: %w", err)
	}
	var env envelope
	if err := json.Unmarshal(blob, &env); err != nil {
		return &simerr.BadInputError{Op: "checkpoint: load",
			Detail: fmt.Sprintf("%s is not a checkpoint file (corrupt or truncated)", path), Err: err}
	}
	if env.Magic != Magic {
		return simerr.BadInput("checkpoint: load", "%s is not a pdnsim checkpoint (magic %q)", path, env.Magic)
	}
	if env.Version != Version {
		return simerr.BadInput("checkpoint: load",
			"%s has schema version %d, this build reads version %d; re-run from scratch", path, env.Version, Version)
	}
	if env.Kind != kind {
		return simerr.BadInput("checkpoint: load",
			"%s holds a %q snapshot, need %q (wrong -resume file?)", path, env.Kind, kind)
	}
	if got := crc32.Checksum(env.Payload, castagnoli); got != env.CRC {
		return simerr.BadInput("checkpoint: load",
			"%s failed its integrity check (crc32c %08x, recorded %08x); the snapshot is corrupt", path, got, env.CRC)
	}
	if err := json.Unmarshal(env.Payload, payload); err != nil {
		return &simerr.BadInputError{Op: "checkpoint: load",
			Detail: fmt.Sprintf("%s payload does not decode", path), Err: err}
	}
	return nil
}
