package checkpoint

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"sync"

	"pdnsim/internal/simerr"
)

// ErrTailUnhealed classifies an Append refused because an earlier failed
// append left a partial line that could not be truncated away. Callers that
// can run a Rewrite (which rebuilds the file and clears the condition) match
// it with errors.Is to decide that a rewrite — not another append — is the
// way forward.
var ErrTailUnhealed = errors.New("checkpoint: journal tail unhealed")

// A Journal is an append-only write-ahead log built from the same framed
// envelope as snapshots: one JSON envelope per line, each carrying a Kind,
// a CRC-32C over its payload, and the schema version. Unlike a snapshot —
// one atomic rename per save — a journal accretes records cheaply (append +
// fsync per record) and is replayed front-to-back after a crash. A torn
// final line (the crash landed mid-append) is expected and truncates the
// replay rather than failing it; corruption *before* the tail also stops the
// replay at the last good record, because records after a damaged one may
// depend on state the damaged one carried.
//
// A *failed* append (ENOSPC, EIO, a failed fsync) may leave a partial line
// at the tail; left in place it would swallow every later record at replay
// (the torn line and its successor parse as one corrupt line). Append
// therefore self-heals by truncating the file back to the last
// known-durable offset before reporting the failure. If the truncate itself
// fails the journal marks its tail unhealed and fails every further Append
// fast — only Rewrite, which rebuilds the whole file, clears the condition.
//
// The journal grows without bound under pure appends; Rewrite compacts it by
// atomically replacing the file with a caller-chosen record set (the
// still-live records), using the same stage+sync+rename+dir-sync discipline
// as Save.
type Journal struct {
	mu   sync.Mutex
	path string
	f    File
	// good is the byte offset of the last record whose write+fsync both
	// succeeded; the truncation target of the torn-tail self-heal.
	good int64
	// tailErr, when non-nil, records a failed append whose partial line
	// could not be truncated away: the tail is unhealed, appends would land
	// after garbage, and only a Rewrite restores consistency.
	tailErr error
}

// JournalRecord is one replayed (or to-be-compacted) journal record: the
// envelope Kind plus the raw payload for the caller to decode.
type JournalRecord struct {
	Kind    string
	Payload json.RawMessage
}

// journalMaxLine bounds one journal line during replay. Records are small
// (ids, shard indices, a board spec at most), so 16 MiB is far above any
// legitimate record while still catching a pathological unterminated line.
const journalMaxLine = 16 << 20

// OpenJournal opens (creating if absent) the journal at path for appending.
func OpenJournal(path string) (*Journal, error) {
	if path == "" {
		return nil, simerr.BadInput("checkpoint: journal", "empty journal path")
	}
	fsys := filesystem()
	f, err := fsys.OpenFile(path, osAppendFlags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: journal open: %w", err)
	}
	// The existing size is the last durable offset: every byte present was
	// either fsynced by a previous incarnation or survived its crash (a torn
	// crash tail is tolerated by replay, unlike a torn *failed-append* tail
	// which Append heals as it happens).
	var size int64
	if fi, err := fsys.Stat(path); err == nil {
		size = fi.Size()
	}
	return &Journal{path: path, f: f, good: size}, nil
}

// Append frames payload in a checksummed envelope of the given kind and
// appends it as one line, syncing before returning: when Append returns nil
// the record survives a crash. On failure the partial line is truncated away
// (see the type comment) so a later successful Append stays replayable. Safe
// for concurrent use.
//
//pdnlint:ignore lockhold single-writer WAL: the mutex exists to serialise write+fsync on one descriptor; every contender is another appender that must wait for this record's durability anyway, and nothing else nests inside it
func (j *Journal) Append(kind string, payload any) error {
	line, err := encodeJournalLine(kind, payload)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return simerr.BadInput("checkpoint: journal append", "journal is closed")
	}
	if j.tailErr != nil {
		return fmt.Errorf("checkpoint: journal append: %w (rewrite required): %v", ErrTailUnhealed, j.tailErr)
	}
	if _, err := j.f.Write(line); err != nil {
		j.healTailLocked(err)
		return fmt.Errorf("checkpoint: journal append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		j.healTailLocked(err)
		return fmt.Errorf("checkpoint: journal append: %w", err)
	}
	j.good += int64(len(line))
	return nil
}

// healTailLocked truncates a failed append's partial line back to the last
// durable offset, or marks the tail unhealed when even that fails. Caller
// holds j.mu and reports cause to its own caller.
func (j *Journal) healTailLocked(cause error) {
	if terr := j.f.Truncate(j.good); terr != nil {
		j.tailErr = fmt.Errorf("checkpoint: journal tail heal: truncate to %d failed: %w (after append failure: %v)", j.good, terr, cause)
	}
}

// Rewrite atomically replaces the journal's contents with recs (stage, sync,
// rename, parent-dir sync — a crash mid-rewrite leaves the old journal
// intact) and reopens the handle for appending. This is the compaction step:
// the caller replays, decides which records are still live, and rewrites the
// journal down to them. It also clears an unhealed-tail condition — the torn
// bytes are gone with the old file.
//
//pdnlint:ignore lockhold single-writer WAL: compaction must exclude appenders for the whole stage+sync+rename swap or a record could land on the unlinked old inode; the mutex guards exactly that window
func (j *Journal) Rewrite(recs []JournalRecord) error {
	var buf bytes.Buffer
	for _, r := range recs {
		line, err := encodeJournalLine(r.Kind, r.Payload)
		if err != nil {
			return err
		}
		buf.Write(line)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return simerr.BadInput("checkpoint: journal rewrite", "journal is closed")
	}
	fsys := filesystem()
	tmp := j.path + ".tmp"
	f, err := fsys.OpenFile(tmp, osWriteFlags, 0o644)
	if err != nil {
		return fmt.Errorf("checkpoint: journal rewrite: %w", err)
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("checkpoint: journal rewrite: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("checkpoint: journal rewrite: %w", err)
	}
	if err := fsys.Rename(tmp, j.path); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("checkpoint: journal rewrite: %w", err)
	}
	if err := fsys.SyncDir(filepath.Dir(j.path)); err != nil {
		// The rename happened but may not be durable; keep appending to the
		// new file (it is the live one) and surface the failure so the
		// caller treats the rewrite as not-yet-durable.
		j.swapHandleLocked(fsys, f, int64(buf.Len()))
		return fmt.Errorf("checkpoint: journal rewrite: %w", err)
	}
	j.swapHandleLocked(fsys, f, int64(buf.Len()))
	return nil
}

// swapHandleLocked retires the pre-rewrite handle and continues appending to
// the freshly published file. It prefers a handle re-opened at the journal's
// own path over the staging handle: the staging handle was opened under the
// .tmp name, and path-classifying interposers (the fault-injection layer)
// would keep attributing every later append to the rewrite. The staging
// handle is the fallback when the re-open fails — it is the same inode as
// the published file, so appends still land in the live journal. Caller
// holds j.mu.
func (j *Journal) swapHandleLocked(fsys FS, staged File, size int64) {
	old := j.f
	if nf, err := fsys.OpenFile(j.path, osAppendFlags, 0o644); err == nil {
		staged.Close()
		j.f = nf
	} else {
		j.f = staged
	}
	j.good = size
	j.tailErr = nil
	old.Close()
}

// Close syncs and closes the journal. Further Appends fail.
//
//pdnlint:ignore lockhold single-writer WAL: the final sync+close must exclude in-flight appenders on the same descriptor
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	if err != nil {
		return fmt.Errorf("checkpoint: journal close: %w", err)
	}
	return nil
}

// encodeJournalLine frames one record as an envelope line (newline-
// terminated compact JSON — json.Marshal never emits raw newlines, so one
// record is exactly one line).
func encodeJournalLine(kind string, payload any) ([]byte, error) {
	body, err := json.Marshal(payload)
	if err != nil {
		return nil, &simerr.BadInputError{Op: "checkpoint: journal append",
			Detail: "payload not serialisable", Err: err}
	}
	env := envelope{
		Magic:   Magic,
		Version: Version,
		Kind:    kind,
		CRC:     crc32.Checksum(body, castagnoli),
		Payload: body,
	}
	line, err := json.Marshal(&env)
	if err != nil {
		return nil, &simerr.BadInputError{Op: "checkpoint: journal append",
			Detail: "envelope not serialisable", Err: err}
	}
	return append(line, '\n'), nil
}

// ReplayJournal reads the journal at path front to back and returns the
// longest valid prefix of records. truncated reports that a torn or corrupt
// record stopped the replay early (a crash mid-append tears the final line;
// that is the normal post-crash state, not an error). A missing file
// surfaces with its *fs.PathError cause preserved — callers distinguish "no
// journal yet" (errors.Is(err, fs.ErrNotExist)) from real I/O failures.
func ReplayJournal(path string) (recs []JournalRecord, truncated bool, err error) {
	f, err := filesystem().Open(path)
	if err != nil {
		return nil, false, fmt.Errorf("checkpoint: journal replay: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), journalMaxLine)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var env envelope
		if err := json.Unmarshal(line, &env); err != nil {
			return recs, true, nil
		}
		if env.Magic != Magic || env.Version != Version {
			return recs, true, nil
		}
		if crc32.Checksum(env.Payload, castagnoli) != env.CRC {
			return recs, true, nil
		}
		recs = append(recs, JournalRecord{Kind: env.Kind, Payload: env.Payload})
	}
	if sc.Err() != nil {
		// An overlong or unreadable tail truncates the replay like a torn
		// line does: everything before it was verified.
		return recs, true, nil
	}
	return recs, false, nil
}
