package checkpoint

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"sync"

	"pdnsim/internal/simerr"
)

// A Journal is an append-only write-ahead log built from the same framed
// envelope as snapshots: one JSON envelope per line, each carrying a Kind,
// a CRC-32C over its payload, and the schema version. Unlike a snapshot —
// one atomic rename per save — a journal accretes records cheaply (append +
// fsync per record) and is replayed front-to-back after a crash. A torn
// final line (the crash landed mid-append) is expected and truncates the
// replay rather than failing it; corruption *before* the tail also stops the
// replay at the last good record, because records after a damaged one may
// depend on state the damaged one carried.
//
// The journal grows without bound under pure appends; Rewrite compacts it by
// atomically replacing the file with a caller-chosen record set (the
// still-live records), using the same stage+sync+rename discipline as Save.
type Journal struct {
	mu   sync.Mutex
	path string
	f    *os.File
}

// JournalRecord is one replayed (or to-be-compacted) journal record: the
// envelope Kind plus the raw payload for the caller to decode.
type JournalRecord struct {
	Kind    string
	Payload json.RawMessage
}

// journalMaxLine bounds one journal line during replay. Records are small
// (ids, shard indices, a board spec at most), so 16 MiB is far above any
// legitimate record while still catching a pathological unterminated line.
const journalMaxLine = 16 << 20

// OpenJournal opens (creating if absent) the journal at path for appending.
func OpenJournal(path string) (*Journal, error) {
	if path == "" {
		return nil, simerr.BadInput("checkpoint: journal", "empty journal path")
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: journal open: %w", err)
	}
	return &Journal{path: path, f: f}, nil
}

// Append frames payload in a checksummed envelope of the given kind and
// appends it as one line, syncing before returning: when Append returns nil
// the record survives a crash. Safe for concurrent use.
//
//pdnlint:ignore lockhold single-writer WAL: the mutex exists to serialise write+fsync on one descriptor; every contender is another appender that must wait for this record's durability anyway, and nothing else nests inside it
func (j *Journal) Append(kind string, payload any) error {
	line, err := encodeJournalLine(kind, payload)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return simerr.BadInput("checkpoint: journal append", "journal is closed")
	}
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("checkpoint: journal append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("checkpoint: journal append: %w", err)
	}
	return nil
}

// Rewrite atomically replaces the journal's contents with recs (stage, sync,
// rename — a crash mid-rewrite leaves the old journal intact) and reopens
// the handle for appending. This is the compaction step: the caller replays,
// decides which records are still live, and rewrites the journal down to
// them.
//
//pdnlint:ignore lockhold single-writer WAL: compaction must exclude appenders for the whole stage+sync+rename swap or a record could land on the unlinked old inode; the mutex guards exactly that window
func (j *Journal) Rewrite(recs []JournalRecord) error {
	var buf bytes.Buffer
	for _, r := range recs {
		line, err := encodeJournalLine(r.Kind, r.Payload)
		if err != nil {
			return err
		}
		buf.Write(line)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return simerr.BadInput("checkpoint: journal rewrite", "journal is closed")
	}
	tmp := j.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("checkpoint: journal rewrite: %w", err)
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: journal rewrite: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: journal rewrite: %w", err)
	}
	if err := os.Rename(tmp, j.path); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: journal rewrite: %w", err)
	}
	// Keep appending to the renamed file, not the unlinked old inode.
	old := j.f
	j.f = f
	old.Close()
	return nil
}

// Close syncs and closes the journal. Further Appends fail.
//
//pdnlint:ignore lockhold single-writer WAL: the final sync+close must exclude in-flight appenders on the same descriptor
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	if err != nil {
		return fmt.Errorf("checkpoint: journal close: %w", err)
	}
	return nil
}

// encodeJournalLine frames one record as an envelope line (newline-
// terminated compact JSON — json.Marshal never emits raw newlines, so one
// record is exactly one line).
func encodeJournalLine(kind string, payload any) ([]byte, error) {
	body, err := json.Marshal(payload)
	if err != nil {
		return nil, &simerr.BadInputError{Op: "checkpoint: journal append",
			Detail: "payload not serialisable", Err: err}
	}
	env := envelope{
		Magic:   Magic,
		Version: Version,
		Kind:    kind,
		CRC:     crc32.Checksum(body, castagnoli),
		Payload: body,
	}
	line, err := json.Marshal(&env)
	if err != nil {
		return nil, &simerr.BadInputError{Op: "checkpoint: journal append",
			Detail: "envelope not serialisable", Err: err}
	}
	return append(line, '\n'), nil
}

// ReplayJournal reads the journal at path front to back and returns the
// longest valid prefix of records. truncated reports that a torn or corrupt
// record stopped the replay early (a crash mid-append tears the final line;
// that is the normal post-crash state, not an error). A missing file
// surfaces with its *fs.PathError cause preserved — callers distinguish "no
// journal yet" (errors.Is(err, fs.ErrNotExist)) from real I/O failures.
func ReplayJournal(path string) (recs []JournalRecord, truncated bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, fmt.Errorf("checkpoint: journal replay: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), journalMaxLine)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var env envelope
		if err := json.Unmarshal(line, &env); err != nil {
			return recs, true, nil
		}
		if env.Magic != Magic || env.Version != Version {
			return recs, true, nil
		}
		if crc32.Checksum(env.Payload, castagnoli) != env.CRC {
			return recs, true, nil
		}
		recs = append(recs, JournalRecord{Kind: env.Kind, Payload: env.Payload})
	}
	if sc.Err() != nil {
		// An overlong or unreadable tail truncates the replay like a torn
		// line does: everything before it was verified.
		return recs, true, nil
	}
	return recs, false, nil
}
