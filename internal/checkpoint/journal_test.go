package checkpoint

import (
	"bytes"
	"encoding/json"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
)

type jrec struct {
	ID string `json:"id"`
	N  int    `json:"n"`
}

func TestJournalAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	want := []jrec{{"j-1", 1}, {"j-2", 2}, {"j-3", 3}}
	for _, r := range want {
		if err := j.Append("test-rec", r); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	recs, truncated, err := ReplayJournal(path)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if truncated {
		t.Fatal("clean journal reported truncated")
	}
	if len(recs) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(want))
	}
	for i, r := range recs {
		if r.Kind != "test-rec" {
			t.Fatalf("record %d kind %q", i, r.Kind)
		}
		var got jrec
		if err := json.Unmarshal(r.Payload, &got); err != nil {
			t.Fatalf("record %d payload: %v", i, err)
		}
		if got != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got, want[i])
		}
	}
}

func TestJournalReplayMissingFile(t *testing.T) {
	_, _, err := ReplayJournal(filepath.Join(t.TempDir(), "absent.journal"))
	if err == nil {
		t.Fatal("replay of a missing journal succeeded")
	}
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("want not-exist error, got %v", err)
	}
}

// A crash mid-append tears the final line; the replay must return every
// record before it and flag the truncation instead of failing.
func TestJournalTornTailTruncatesReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append("test-rec", jrec{ID: "j", N: i}); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	// Tear the last record in half (keep its line unterminated, like a crash
	// between write and the final newline landing).
	torn := blob[:len(blob)-len(blob)/5]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatalf("write torn: %v", err)
	}
	recs, truncated, err := ReplayJournal(path)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if !truncated {
		t.Fatal("torn tail not reported")
	}
	if len(recs) != 2 {
		t.Fatalf("replayed %d records from torn journal, want 2", len(recs))
	}
}

// A bit flip in an interior record stops the replay at the last good record:
// later records may depend on state the damaged one carried.
func TestJournalInteriorCorruptionStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append("test-rec", jrec{ID: "j", N: i}); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	// Flip a payload bit inside the second record: the second line's payload
	// carries "n":1 — turn the digit into 0 so the recorded CRC no longer
	// matches (the CRC covers the payload, so the flip must land there).
	at := bytes.Index(blob, []byte(`"n":1`))
	if at < 0 {
		t.Fatal("second record payload not found")
	}
	blob[at+len(`"n":1`)-1] ^= 0x01
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatalf("write corrupt: %v", err)
	}
	recs, truncated, err := ReplayJournal(path)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if !truncated {
		t.Fatal("interior corruption not reported")
	}
	if len(recs) != 1 {
		t.Fatalf("replayed %d records past corruption, want 1", len(recs))
	}
}

func TestJournalRewriteCompactsAndKeepsAppending(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := 0; i < 5; i++ {
		if err := j.Append("test-rec", jrec{ID: "j", N: i}); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	recs, _, err := ReplayJournal(path)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	// Compact down to the middle record, then append one more: the append
	// must land in the rewritten file, not the unlinked pre-compaction inode.
	if err := j.Rewrite(recs[2:3]); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	if err := j.Append("test-rec", jrec{ID: "j", N: 9}); err != nil {
		t.Fatalf("append after rewrite: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	recs, truncated, err := ReplayJournal(path)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if truncated {
		t.Fatal("rewritten journal reported truncated")
	}
	var ns []int
	for _, r := range recs {
		var got jrec
		if err := json.Unmarshal(r.Payload, &got); err != nil {
			t.Fatalf("payload: %v", err)
		}
		ns = append(ns, got.N)
	}
	if len(ns) != 2 || ns[0] != 2 || ns[1] != 9 {
		t.Fatalf("after rewrite+append got records %v, want [2 9]", ns)
	}
}

func TestJournalAppendAfterCloseFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := j.Append("test-rec", jrec{}); err == nil {
		t.Fatal("append after close succeeded")
	}
}
