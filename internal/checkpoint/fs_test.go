package checkpoint

import (
	"errors"
	iofs "io/fs"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// spyFS records every operation (with the file's base name) in order while
// delegating to the real filesystem, and can fail chosen operations.
type spyFS struct {
	inner FS

	mu  sync.Mutex
	ops []string
	// fail maps an op label ("sync jobs.journal.tmp") to the error its next
	// occurrence returns instead of delegating.
	fail map[string]error
}

func newSpyFS() *spyFS { return &spyFS{inner: OS(), fail: make(map[string]error)} }

func (s *spyFS) record(op, name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	label := op + " " + filepath.Base(name)
	s.ops = append(s.ops, label)
	if err, ok := s.fail[label]; ok {
		delete(s.fail, label)
		return err
	}
	return nil
}

func (s *spyFS) failNext(label string, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fail[label] = err
}

func (s *spyFS) log() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.ops...)
}

func (s *spyFS) OpenFile(name string, flag int, perm iofs.FileMode) (File, error) {
	if err := s.record("open", name); err != nil {
		return nil, err
	}
	f, err := s.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &spyFile{inner: f, fs: s, name: name}, nil
}

func (s *spyFS) Open(name string) (File, error) {
	if err := s.record("openr", name); err != nil {
		return nil, err
	}
	return s.inner.Open(name)
}

func (s *spyFS) ReadFile(name string) ([]byte, error) {
	if err := s.record("read", name); err != nil {
		return nil, err
	}
	return s.inner.ReadFile(name)
}

func (s *spyFS) Rename(oldpath, newpath string) error {
	if err := s.record("rename", newpath); err != nil {
		return err
	}
	return s.inner.Rename(oldpath, newpath)
}

func (s *spyFS) Remove(name string) error {
	if err := s.record("remove", name); err != nil {
		return err
	}
	return s.inner.Remove(name)
}

func (s *spyFS) Stat(name string) (iofs.FileInfo, error) { return s.inner.Stat(name) }

func (s *spyFS) SyncDir(dir string) error {
	if err := s.record("dirsync", dir); err != nil {
		return err
	}
	return s.inner.SyncDir(dir)
}

type spyFile struct {
	inner File
	fs    *spyFS
	name  string
}

func (f *spyFile) Read(p []byte) (int, error) { return f.inner.Read(p) }

func (f *spyFile) Write(p []byte) (int, error) {
	if err := f.fs.record("write", f.name); err != nil {
		return 0, err
	}
	return f.inner.Write(p)
}

func (f *spyFile) Sync() error {
	if err := f.fs.record("sync", f.name); err != nil {
		return err
	}
	return f.inner.Sync()
}

func (f *spyFile) Truncate(size int64) error {
	if err := f.fs.record("truncate", f.name); err != nil {
		return err
	}
	return f.inner.Truncate(size)
}

func (f *spyFile) Close() error { return f.inner.Close() }

// assertSubsequence checks that want appears in got, in order (other ops may
// interleave).
func assertSubsequence(t *testing.T, got, want []string) {
	t.Helper()
	i := 0
	for _, op := range got {
		if i < len(want) && op == want[i] {
			i++
		}
	}
	if i != len(want) {
		t.Fatalf("operation log missing ordered subsequence.\n got: %s\nwant: %s",
			strings.Join(got, ", "), strings.Join(want, ", "))
	}
}

func TestSaveOrdersWriteSyncRenameDirsync(t *testing.T) {
	dir := t.TempDir()
	spy := newSpyFS()
	defer SetFS(spy)()
	path := filepath.Join(dir, "board.ckpt")
	if err := Save(path, "k", map[string]int{"n": 1}); err != nil {
		t.Fatalf("Save: %v", err)
	}
	// The crash-safety discipline, in order: stage the temp file, fsync its
	// bytes, publish by rename, then fsync the parent directory so the
	// rename itself survives a crash.
	assertSubsequence(t, spy.log(), []string{
		"write board.ckpt.tmp",
		"sync board.ckpt.tmp",
		"rename board.ckpt",
		"dirsync " + filepath.Base(dir),
	})
}

func TestSaveDirSyncFailureSurfaces(t *testing.T) {
	dir := t.TempDir()
	spy := newSpyFS()
	defer SetFS(spy)()
	boom := errors.New("dirsync refused")
	spy.failNext("dirsync "+filepath.Base(dir), boom)
	err := Save(filepath.Join(dir, "b.ckpt"), "k", map[string]int{"n": 1})
	if !errors.Is(err, boom) {
		t.Fatalf("Save with failing dir sync = %v, want the dirsync error", err)
	}
}

func TestSaveFailureLeavesOldSnapshotIntact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "b.ckpt")
	if err := Save(path, "k", map[string]int{"n": 1}); err != nil {
		t.Fatalf("Save: %v", err)
	}
	spy := newSpyFS()
	defer SetFS(spy)()
	spy.failNext("sync b.ckpt.tmp", errors.New("fsync lost power"))
	if err := Save(path, "k", map[string]int{"n": 2}); err == nil {
		t.Fatalf("Save with failing fsync succeeded, want error")
	}
	var out map[string]int
	if err := Load(path, "k", &out); err != nil || out["n"] != 1 {
		t.Fatalf("old snapshot = %v, %v; want n=1 untouched", out, err)
	}
}

func TestJournalRewriteOrdersWriteSyncRenameDirsync(t *testing.T) {
	dir := t.TempDir()
	spy := newSpyFS()
	defer SetFS(spy)()
	j, err := OpenJournal(filepath.Join(dir, "jobs.journal"))
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	defer j.Close()
	if err := j.Append("k", map[string]int{"n": 1}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := j.Rewrite(nil); err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	assertSubsequence(t, spy.log(), []string{
		"write jobs.journal.tmp",
		"sync jobs.journal.tmp",
		"rename jobs.journal",
		"dirsync " + filepath.Base(dir),
	})
}

func TestJournalAppendHealsFailedAppend(t *testing.T) {
	dir := t.TempDir()
	spy := newSpyFS()
	defer SetFS(spy)()
	path := filepath.Join(dir, "jobs.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	defer j.Close()
	if err := j.Append("k", map[string]int{"n": 1}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	// Fail the next append's fsync: the written line must be truncated away
	// so the journal stays replayable past a later successful append.
	spy.failNext("sync jobs.journal", errors.New("fsync eio"))
	if err := j.Append("k", map[string]int{"n": 2}); err == nil {
		t.Fatalf("Append with failing fsync succeeded, want error")
	}
	assertSubsequence(t, spy.log(), []string{
		"sync jobs.journal",     // the failed barrier...
		"truncate jobs.journal", // ...healed by truncating back to the last durable offset
	})
	if err := j.Append("k", map[string]int{"n": 3}); err != nil {
		t.Fatalf("Append after heal: %v", err)
	}
	recs, truncated, err := ReplayJournal(path)
	if err != nil || truncated {
		t.Fatalf("ReplayJournal: truncated=%v err=%v", truncated, err)
	}
	if len(recs) != 2 {
		t.Fatalf("replayed %d records, want 2 (the failed append fully healed away)", len(recs))
	}
}

func TestJournalUnhealedTailFailsFastUntilRewrite(t *testing.T) {
	dir := t.TempDir()
	spy := newSpyFS()
	defer SetFS(spy)()
	path := filepath.Join(dir, "jobs.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	defer j.Close()
	// Fail the append's write AND the healing truncate: the tail stays
	// dirty and the journal must refuse further appends.
	spy.failNext("write jobs.journal", errors.New("write eio"))
	spy.failNext("truncate jobs.journal", errors.New("truncate eio"))
	if err := j.Append("k", map[string]int{"n": 1}); err == nil {
		t.Fatalf("Append with failing write succeeded, want error")
	}
	if err := j.Append("k", map[string]int{"n": 2}); !errors.Is(err, ErrTailUnhealed) {
		t.Fatalf("Append on dirty tail = %v, want ErrTailUnhealed", err)
	}
	if err := j.Rewrite(nil); err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	if err := j.Append("k", map[string]int{"n": 3}); err != nil {
		t.Fatalf("Append after Rewrite cleared the tail: %v", err)
	}
}

func TestSetFSRestores(t *testing.T) {
	spy := newSpyFS()
	restore := SetFS(spy)
	if filesystem() != FS(spy) {
		t.Fatalf("filesystem() did not return the injected FS")
	}
	restore()
	if _, ok := filesystem().(osFS); !ok {
		t.Fatalf("restore did not reinstate the process filesystem")
	}
}
