package checkpoint

import (
	"encoding/json"
	"errors"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pdnsim/internal/simerr"
)

type samplePayload struct {
	Step int       `json:"step"`
	X    []float64 `json:"x"`
	Name string    `json:"name"`
}

func samples() samplePayload {
	return samplePayload{
		Step: 1234,
		// Values chosen to stress float round-tripping: subnormal-ish,
		// non-terminating binary fractions, huge and tiny magnitudes.
		X:    []float64{0.1, 1.0 / 3.0, 2.5e-312, 1.7976931348623157e308, -4.9e-324, 3.141592653589793},
		Name: "tran",
	}
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.ckpt")
	in := samples()
	if err := Save(path, "tran", &in); err != nil {
		t.Fatal(err)
	}
	var out samplePayload
	if err := Load(path, "tran", &out); err != nil {
		t.Fatal(err)
	}
	if out.Step != in.Step || out.Name != in.Name || len(out.X) != len(in.X) {
		t.Fatalf("round trip mangled payload: %+v vs %+v", out, in)
	}
	for i := range in.X {
		// Bitwise equality: the resume-determinism contract depends on JSON's
		// shortest-round-trip float formatting being exact.
		if got, want := out.X[i], in.X[i]; got != want {
			t.Fatalf("X[%d] round-tripped %v -> %v", i, want, got)
		}
	}
}

func TestSaveIsAtomic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.ckpt")
	first := samples()
	if err := Save(path, "tran", &first); err != nil {
		t.Fatal(err)
	}
	second := samples()
	second.Step = 9999
	if err := Save(path, "tran", &second); err != nil {
		t.Fatal(err)
	}
	var out samplePayload
	if err := Load(path, "tran", &out); err != nil {
		t.Fatal(err)
	}
	if out.Step != 9999 {
		t.Fatalf("overwrite lost the newer snapshot: step %d", out.Step)
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("staging file left behind: %v", err)
	}
}

func TestLoadMissingFileIsPathError(t *testing.T) {
	var out samplePayload
	err := Load(filepath.Join(t.TempDir(), "nope.ckpt"), "tran", &out)
	var pe *fs.PathError
	if !errors.As(err, &pe) {
		t.Fatalf("missing file must keep its fs.PathError cause, got %v", err)
	}
}

func TestLoadWrongKind(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.ckpt")
	in := samples()
	if err := Save(path, "fdtd", &in); err != nil {
		t.Fatal(err)
	}
	var out samplePayload
	err := Load(path, "tran", &out)
	if !errors.Is(err, simerr.ErrBadInput) {
		t.Fatalf("kind mismatch must be ErrBadInput, got %v", err)
	}
	if !strings.Contains(err.Error(), "fdtd") {
		t.Fatalf("kind mismatch should name the stored kind: %v", err)
	}
}

func TestLoadVersionBump(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.ckpt")
	in := samples()
	if err := Save(path, "tran", &in); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var env map[string]json.RawMessage
	if err := json.Unmarshal(blob, &env); err != nil {
		t.Fatal(err)
	}
	env["version"] = json.RawMessage("9999")
	bumped, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, bumped, 0o644); err != nil {
		t.Fatal(err)
	}
	var out samplePayload
	if err := Load(path, "tran", &out); !errors.Is(err, simerr.ErrBadInput) {
		t.Fatalf("version bump must be ErrBadInput, got %v", err)
	}
}

// TestLoadNeverPanicsOnCorruption is the fuzz-style integrity sweep: every
// single-byte truncation and a large sample of byte flips of a valid
// snapshot must load as a typed error — never a panic, and never a silent
// "success" yielding garbage state.
func TestLoadNeverPanicsOnCorruption(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.ckpt")
	in := samples()
	if err := Save(good, "tran", &in); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "bad.ckpt")
	check := func(t *testing.T, mutated []byte, what string) {
		t.Helper()
		if err := os.WriteFile(bad, mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("%s: Load panicked: %v", what, r)
			}
		}()
		var out samplePayload
		err := Load(bad, "tran", &out)
		if err == nil {
			// A mutation can only legally load if it reproduced a valid
			// snapshot byte-for-byte semantics; with a CRC over the payload
			// and strict envelope fields that means the payload decoded to
			// the same values. Verify rather than assume.
			if out.Step != in.Step || len(out.X) != len(in.X) {
				t.Fatalf("%s: corrupt snapshot loaded silently: %+v", what, out)
			}
			return
		}
		if !errors.Is(err, simerr.ErrBadInput) {
			t.Fatalf("%s: corruption must be ErrBadInput, got %v", what, err)
		}
	}

	// Every truncation length, including the empty file.
	for cut := 0; cut < len(blob); cut += 7 {
		check(t, blob[:cut], "truncate")
	}
	check(t, nil, "empty")

	// Deterministic sample of single-byte flips across the whole file
	// (envelope fields, checksum, payload bytes all get hit).
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		i := rng.Intn(len(blob))
		mutated := append([]byte(nil), blob...)
		mutated[i] ^= byte(1 << rng.Intn(8))
		check(t, mutated, "bitflip")
	}

	// Garbage prefixes/suffixes.
	check(t, append([]byte("garbage"), blob...), "prefix")
	check(t, append(append([]byte(nil), blob...), []byte("trailing")...), "suffix")
}

// FuzzLoad drives the loader with arbitrary bytes: every input must come
// back as a typed simerr.ErrBadInput-class error or a faithful decode —
// never a panic. `go test` runs the seed corpus; `go test -fuzz=FuzzLoad`
// explores further.
func FuzzLoad(f *testing.F) {
	good := filepath.Join(f.TempDir(), "seed.ckpt")
	in := samples()
	if err := Save(good, "tran", &in); err != nil {
		f.Fatal(err)
	}
	blob, err := os.ReadFile(good)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add(blob[:len(blob)/2])
	f.Add([]byte("{}"))
	f.Add([]byte(`{"magic":"pdnsim-checkpoint","version":1,"kind":"tran","crc32c":0,"payload":{}}`))
	f.Add([]byte(nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.ckpt")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		var out samplePayload
		if err := Load(path, "tran", &out); err != nil && !errors.Is(err, simerr.ErrBadInput) {
			t.Fatalf("corrupt input must surface as ErrBadInput, got %v", err)
		}
	})
}

func TestPolicy(t *testing.T) {
	var off Policy
	if off.Enabled() || off.Due(1000) {
		t.Fatal("zero policy must be disabled")
	}
	p := Policy{Path: "x.ckpt"}
	if !p.Enabled() {
		t.Fatal("path-only policy must be enabled")
	}
	if p.Stride() != DefaultEvery {
		t.Fatalf("default stride = %d", p.Stride())
	}
	if p.Due(0) {
		t.Fatal("step 0 is never due (initial state needs no snapshot)")
	}
	if !p.Due(DefaultEvery) || p.Due(DefaultEvery-1) {
		t.Fatal("Due must fire exactly on the stride")
	}
	q := Policy{Path: "x.ckpt", Every: 7}
	if !q.Due(14) || q.Due(15) {
		t.Fatal("custom stride broken")
	}
}

// TestCorruptClassifiesLoadFailures pins the cache-degradation contract:
// integrity/schema failures are Corrupt (safe to evict and recompute),
// filesystem failures are not (the state on disk may be fine).
func TestCorruptClassifiesLoadFailures(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.ckpt")
	in := samples()
	if err := Save(good, "tran", &in); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	var out samplePayload

	// Missing file: a *fs.PathError, not corruption.
	if err := Load(filepath.Join(dir, "nope.ckpt"), "tran", &out); err == nil || Corrupt(err) {
		t.Fatalf("missing file must not classify as corrupt: %v", err)
	}

	// Truncation, bit flip, wrong kind: all corruption.
	bad := filepath.Join(dir, "bad.ckpt")
	if err := os.WriteFile(bad, blob[:len(blob)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Load(bad, "tran", &out); err == nil || !Corrupt(err) {
		t.Fatalf("truncation must classify as corrupt: %v", err)
	}
	flipped := append([]byte(nil), blob...)
	flipped[len(flipped)/2] ^= 0x40
	if err := os.WriteFile(bad, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Load(bad, "tran", &out); err == nil || !Corrupt(err) {
		t.Fatalf("bit flip must classify as corrupt: %v", err)
	}
	if err := Load(good, "fdtd", &out); err == nil || !Corrupt(err) {
		t.Fatalf("kind mismatch must classify as corrupt: %v", err)
	}

	// Healthy load and unrelated errors are not corrupt.
	if err := Load(good, "tran", &out); err != nil {
		t.Fatal(err)
	}
	if Corrupt(nil) || Corrupt(errors.New("unrelated")) {
		t.Fatal("nil/unrelated errors must not classify as corrupt")
	}
}
