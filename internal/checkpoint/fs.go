package checkpoint

import (
	"fmt"
	"io"
	iofs "io/fs"
	"os"
	"sync/atomic"
)

// File is the writable-handle surface the checkpoint envelope needs from the
// filesystem: sequential reads (replay), appends and staged writes, fsync,
// and tail truncation (the journal's torn-append self-heal). *os.File
// satisfies it.
type File interface {
	io.Reader
	io.Writer
	Sync() error
	Truncate(size int64) error
	Close() error
}

// FS is the filesystem seam every durable write in this package routes
// through — Save, Load, the Journal, and (via them) the serve daemon's
// manifest and cache I/O. Production uses the process filesystem (osFS);
// tests and the internal/fault injector interpose a wrapper with SetFS to
// observe or fail individual operations without touching the os package.
type FS interface {
	// OpenFile, Open, ReadFile, Rename, Remove and Stat mirror the os
	// functions of the same names (Open is read-only).
	OpenFile(name string, flag int, perm iofs.FileMode) (File, error)
	Open(name string) (File, error)
	ReadFile(name string) ([]byte, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Stat(name string) (iofs.FileInfo, error)
	// SyncDir fsyncs a directory, making previously renamed or created
	// entries inside it durable. Rename-based atomic publishes are not
	// crash-safe without it: the rename lives in the directory, and an
	// unsynced directory can lose the entry even though the file's own
	// bytes were fsynced.
	SyncDir(dir string) error
}

// Open modes of the two write disciplines in this package: staged atomic
// writes (Save, Journal.Rewrite) truncate their temp file, the journal's
// append path appends.
const (
	osWriteFlags  = os.O_WRONLY | os.O_CREATE | os.O_TRUNC
	osAppendFlags = os.O_WRONLY | os.O_CREATE | os.O_APPEND
)

// osFS is the production FS: thin delegation to the os package.
type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm iofs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) Open(name string) (File, error)          { return os.Open(name) }
func (osFS) ReadFile(name string) ([]byte, error)    { return os.ReadFile(name) }
func (osFS) Rename(oldpath, newpath string) error    { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                { return os.Remove(name) }
func (osFS) Stat(name string) (iofs.FileInfo, error) { return os.Stat(name) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("checkpoint: dir sync: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("checkpoint: dir sync: %w", err)
	}
	return nil
}

// OS returns the production (process) filesystem as an FS. Wrappers that
// interpose on real I/O (internal/fault) build on it.
func OS() FS { return osFS{} }

// overrideFS, when set, replaces the process filesystem for every durable
// operation in this package. The hot path pays one atomic load and a nil
// check (filesystem below); production never sets it.
var overrideFS atomic.Pointer[FS]

// SetFS installs fs as the package filesystem and returns a restore
// function. It exists for tests and fault injection (cmd/pdnserve's
// -fault-schedule flag) only — swapping the filesystem under live writers is
// safe (the pointer swap is atomic; in-flight handles keep their origin FS)
// but destroys the durability guarantees the injected FS chooses to break.
func SetFS(fs FS) (restore func()) {
	var prev *FS
	if fs == nil {
		prev = overrideFS.Swap(nil)
	} else {
		prev = overrideFS.Swap(&fs)
	}
	return func() { overrideFS.Store(prev) }
}

// filesystem resolves the active FS: the injected override if one is set,
// the process filesystem otherwise.
func filesystem() FS {
	if p := overrideFS.Load(); p != nil {
		return *p
	}
	return osFS{}
}

// SyncDir fsyncs dir through the active filesystem. Exported so callers
// outside this package that publish files by rename can apply the same
// rename-then-sync-parent discipline Save and Journal.Rewrite use (the
// durable analyzer's rename-without-dir-sync rule checks for it).
func SyncDir(dir string) error {
	return filesystem().SyncDir(dir)
}
