GO ?= go

.PHONY: build test bench bench-smoke check vet race lint pdnlint lint-sarif smoke smoke-serve chaos

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# bench runs the paper-figure and dense-kernel benchmarks and records them
# into the BENCH_<date>.json trajectory (scripts/bench.sh, cmd/benchjson).
bench:
	./scripts/bench.sh

# bench-smoke is the CI variant: one iteration per benchmark, gated against
# the committed trajectory — fails on a >2x ns/op regression of any shared
# benchmark (the factor lives in cmd/benchjson).
bench-smoke:
	BENCH_SMOKE=1 BENCH_BASELINE=$(BENCH_BASELINE) ./scripts/bench.sh

vet:
	$(GO) vet ./...

# pdnlint is the project's own static analyser (cmd/pdnlint): it enforces
# the solver's safety contracts — typed errors, cancellation in hot loops,
# no float equality, named tolerances, race-safe fan-out, lock-hold and
# lock-order discipline, accounted goroutines, durable-write envelopes, and
# allocation-free //pdn:hot kernels. The roster comes from lint.Analyzers;
# adding an analyzer there is all it takes for this target (and CI) to
# enforce it. Zero findings is the contract; suppressions need a
# //pdnlint:ignore with a reason.
pdnlint:
	$(GO) run ./cmd/pdnlint ./...

# lint-sarif writes the same findings as SARIF 2.1.0 (pdnlint.sarif) for
# code-scanning upload; the exit code still reflects findings.
lint-sarif:
	$(GO) run ./cmd/pdnlint -sarif ./... > pdnlint.sarif

# lint is vet plus a formatting check plus pdnlint: any file gofmt would
# rewrite fails the target (and is listed).
lint: vet pdnlint
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

race:
	$(GO) test -race ./...

# smoke kills a checkpointed transient mid-run with SIGTERM and verifies a
# -resume run reproduces the uninterrupted output byte-for-byte.
smoke:
	./scripts/smoke-killresume.sh

# smoke-serve SIGTERMs the pdnserve daemon mid-sweep and verifies the drain
# contract: exit 0, the interrupted job lands "snapshotted", and a restarted
# daemon resumes its snapshot to completion. A degraded-durability leg
# injects bounded journal faults via -fault-schedule and verifies the daemon
# serves honestly (durable:false, readyz "degraded") and re-arms on its own.
smoke-serve:
	./scripts/smoke-serve.sh

# chaos runs the storage-fault suites under the race detector: seeded fault
# schedules injected under the checkpoint filesystem seam (internal/fault),
# the crash-safety ordering tests (internal/checkpoint), and the daemon's
# durability state machine + recovery chaos (internal/serve). Short mode
# skips the subprocess kill-9 legs — CI runs those via smoke-serve; the
# seeded schedules replay deterministically either way.
chaos:
	$(GO) test -race -short ./internal/fault/ ./internal/checkpoint/ ./internal/serve/

# check is the full hygiene gate: static analysis and formatting plus the
# whole test suite under the race detector (the BEM assembly and S-parameter
# sweeps are parallel, so races are a real failure mode here).
check: lint race
