GO ?= go

.PHONY: build test bench check vet race lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem .

vet:
	$(GO) vet ./...

# lint is vet plus a formatting check: any file gofmt would rewrite fails
# the target (and is listed).
lint: vet
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

race:
	$(GO) test -race ./...

# check is the full hygiene gate: static analysis and formatting plus the
# whole test suite under the race detector (the BEM assembly and S-parameter
# sweeps are parallel, so races are a real failure mode here).
check: lint race
