GO ?= go

.PHONY: build test bench check vet race lint pdnlint smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem .

vet:
	$(GO) vet ./...

# pdnlint is the project's own static analyser (cmd/pdnlint): it enforces
# the solver's safety contracts — typed errors, cancellation in hot loops,
# no float equality, named tolerances, race-safe fan-out. Zero findings is
# the contract; suppressions need a //pdnlint:ignore with a reason.
pdnlint:
	$(GO) run ./cmd/pdnlint ./...

# lint is vet plus a formatting check plus pdnlint: any file gofmt would
# rewrite fails the target (and is listed).
lint: vet pdnlint
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

race:
	$(GO) test -race ./...

# smoke kills a checkpointed transient mid-run with SIGTERM and verifies a
# -resume run reproduces the uninterrupted output byte-for-byte.
smoke:
	./scripts/smoke-killresume.sh

# check is the full hygiene gate: static analysis and formatting plus the
# whole test suite under the race detector (the BEM assembly and S-parameter
# sweeps are parallel, so races are a real failure mode here).
check: lint race
