GO ?= go

.PHONY: build test bench check vet race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem .

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the full hygiene gate: static analysis plus the whole test suite
# under the race detector (the BEM assembly and S-parameter sweeps are
# parallel, so races are a real failure mode here).
check: vet race
