// Command experiments regenerates every figure and quantitative claim of
// the paper's evaluation section (§6). Run with no arguments to execute the
// full suite, or name specific experiments:
//
//	experiments [fig1] [ex1] [fig5] [fig7] [fig8] [ssn1] [ssn2] [ablations]
//
// Flags:
//
//	-data   also print the raw data series (for plotting)
//	-fast   use reduced mesh/frequency resolution (CI-sized)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pdnsim/internal/experiments"
)

var (
	printData = flag.Bool("data", false, "print raw data series for plotting")
	fast      = flag.Bool("fast", false, "reduced resolution (CI-sized)")
)

func main() {
	flag.Parse()
	names := flag.Args()
	if len(names) == 0 {
		names = []string{"fig1", "ex1", "fig5", "fig7", "fig8", "ssn1", "ssn2", "ablations"}
	}
	ok := true
	for _, n := range names {
		if !run(n) {
			ok = false
		}
	}
	if !ok {
		os.Exit(1)
	}
}

func run(name string) bool {
	fmt.Printf("==== %s ====\n", name)
	t0 := time.Now()
	var err error
	switch name {
	case "fig1":
		err = fig1()
	case "ex1":
		err = ex1()
	case "fig5":
		err = fig5()
	case "fig7":
		err = fig7()
	case "fig8":
		err = fig8()
	case "ssn1":
		err = ssn1()
	case "ssn2":
		err = ssn2()
	case "ablations":
		err = ablations()
	default:
		err = fmt.Errorf("unknown experiment %q", name)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s failed: %v\n", name, err)
		return false
	}
	fmt.Printf("(%s)\n\n", time.Since(t0).Round(time.Millisecond))
	return true
}

func fig1() error {
	nx, ny := 28, 20
	if *fast {
		nx, ny = 16, 12
	}
	r, err := experiments.Fig1SplitPlaneMesh(nx, ny)
	if err != nil {
		return err
	}
	fmt.Println("Paper Fig. 1 — split MCM power plane discretisation")
	fmt.Print(r.String())
	return nil
}

func ex1() error {
	n := 14
	if *fast {
		n = 10
	}
	r, err := experiments.Ex1LPatchResonance(n)
	if err != nil {
		return err
	}
	fmt.Println("Paper §6.1 example 1 — L-shaped patch resonances (equivalent circuit vs reference)")
	fmt.Print(r.String())
	if *printData {
		printSeries(r.Zin.Name, "f (GHz)", r.Zin.X, "|Zin| (Ω)", r.Zin.Y)
	}
	return nil
}

func fig5() error {
	r, err := experiments.Fig5CoupledMicrostrip()
	if err != nil {
		return err
	}
	fmt.Println("Paper Figs. 4–5 — coupled microstrip transient and crosstalk")
	fmt.Print(r.String())
	if *printData {
		printSeries("active near", "t (ns)", r.TimeNs, "V", r.ActiveNear)
		printSeries("active far", "t (ns)", r.TimeNs, "V", r.ActiveFar)
		printSeries("victim near", "t (ns)", r.TimeNs, "V", r.VictimNear)
		printSeries("victim far", "t (ns)", r.TimeNs, "V", r.VictimFar)
	}
	return nil
}

func fig7() error {
	nx, extra, nf := 16, 37, 120
	if *fast {
		nx, extra, nf = 12, 20, 40
	}
	r, err := experiments.Fig7HPPlaneSParams(nx, extra, nf)
	if err != nil {
		return err
	}
	fmt.Println("Paper Figs. 6–7 — HP test plane S-parameters")
	fmt.Print(r.String())
	if *printData {
		printSeries("|S21| equivalent circuit", "f (GHz)", r.FreqGHz, "dB", r.S21Equiv)
		printSeries("|S21| cavity reference", "f (GHz)", r.FreqGHz, "dB", r.S21Cavity)
	}
	return nil
}

func fig8() error {
	nx, extra := 16, 37
	if *fast {
		nx, extra = 12, 20
	}
	r, err := experiments.Fig8TransientVsFDTD(nx, extra)
	if err != nil {
		return err
	}
	fmt.Println("Paper Fig. 8 — port-2 transient, equivalent circuit vs FDTD")
	fmt.Print(r.String())
	if *printData {
		printSeries("V(port2) equivalent circuit", "t (ns)", r.TimeNs, "V", r.Port2Equiv)
		printSeries("V(port2) FDTD", "t (ns)", r.TimeNs, "V", r.Port2FDTD)
	}
	return nil
}

func ssn1() error {
	cfg := experiments.SSN1Config{}
	if *fast {
		cfg = experiments.SSN1Config{
			MeshNx: 14, MeshNy: 10,
			SwitchingCounts: []int{1, 4, 16},
			DecapCounts:     []int{0, 4},
			Tstop:           6e-9, Dt: 0.04e-9,
		}
	}
	r, err := experiments.SSN1Prelayout(cfg)
	if err != nil {
		return err
	}
	fmt.Println("Paper §6.2 — pre-layout SSN study (7×10\" FR4, 16-driver chip, 30 mil planes)")
	fmt.Print(r.String())
	return nil
}

func ssn2() error {
	cfg := experiments.SSN2Config{}
	if *fast {
		cfg = experiments.SSN2Config{MeshNx: 18, MeshNy: 14, Chips: 12, Tstop: 5e-9, Dt: 0.05e-9}
	}
	r, err := experiments.SSN2Postlayout(cfg)
	if err != nil {
		return err
	}
	fmt.Println("Paper §6.2 — post-layout system evaluation (26 chips, 10 mil planes)")
	fmt.Print(r.String())
	return nil
}

func ablations() error {
	fmt.Println("DESIGN.md §5 ablation studies")
	if r, err := experiments.AblationTesting(0); err != nil {
		return err
	} else {
		fmt.Print(r.String())
	}
	if r, err := experiments.AblationToeplitz(0); err != nil {
		return err
	} else {
		fmt.Print(r.String())
	}
	if r, err := experiments.AblationImages(0); err != nil {
		return err
	} else {
		fmt.Print(r.String())
	}
	if r, err := experiments.AblationIntegrator(12, 20); err != nil {
		return err
	} else {
		fmt.Print(r.String())
	}
	if r, err := experiments.AblationMesh(); err != nil {
		return err
	} else {
		fmt.Print(r.String())
	}
	if r, err := experiments.FosterMOR(12, 20, 10e9); err != nil {
		return err
	} else {
		fmt.Print(r.String())
	}
	return nil
}

func printSeries(name, xl string, x []float64, yl string, y []float64) {
	fmt.Printf("# %s\n# %s\t%s\n", name, xl, yl)
	for i := range x {
		fmt.Printf("%.6g\t%.6g\n", x[i], y[i])
	}
}
