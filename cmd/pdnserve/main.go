// Command pdnserve runs the extraction daemon: an HTTP/JSON service that
// accepts board extraction and sweep jobs, executes them on a bounded worker
// pool behind a fixed-capacity queue, and survives overload, slow solves, and
// shutdown without losing accepted work.
//
// Usage:
//
//	pdnserve [-addr :8844] [-workers 2] [-queue 16] [-state-dir /var/lib/pdnsim] \
//	         [-deadline 2m] [-max-deadline 10m] [-drain-grace 30s] \
//	         [-shard-points 8] [-shard-lease 30s] [-shard-attempts 3] [-no-recover] \
//	         [-rearm-probe 2s] [-fault-schedule "seed=7;journal.append:eio{times=3}"]
//
// API (see internal/serve):
//
//	GET  /healthz              liveness
//	GET  /readyz               readiness (503 while draining)
//	POST /jobs                 submit {"board": {...}, "sweep": {...}, "deadline_ms": N}
//	GET  /jobs                 list job statuses
//	GET  /jobs/{id}            job status (partial results are 200 + detail)
//	GET  /jobs/{id}/netlist    equivalent-circuit netlist
//	GET  /jobs/{id}/touchstone sweep S-parameters
//
// Robustness contract: a full queue sheds load with 429 + Retry-After; every
// job runs under a deadline; repeat queries against an unchanged board serve
// from a CRC-guarded operator cache that evicts and recomputes damaged
// entries. On SIGINT/SIGTERM the daemon stops accepting, gives in-flight jobs
// -drain-grace to finish, then cancels them so sweeps flush resumable
// snapshots, flushes never-started jobs to -state-dir/queue.manifest, and
// exits 0. A second signal aborts immediately.
//
// Crash safety: with a -state-dir, sweep jobs run as leased shards under a
// write-ahead job journal, and on startup the daemon replays journal + queue
// manifest, automatically resubmitting every accepted-but-unfinished job
// under its original id — each resumes from its last completed shard. Use
// -no-recover to start cold and leave the state files in place.
//
// Degraded durability: when state-dir writes keep failing after bounded
// retries, the daemon does not crash or shed jobs — it keeps executing them
// and marks their statuses durable:false with a last_error, readyz reports
// "degraded", and a background probe (period -rearm-probe) re-arms full
// durability once storage answers again. -fault-schedule injects seeded
// storage faults under the checkpoint filesystem for chaos testing; never
// set it in production.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pdnsim/internal/checkpoint"
	"pdnsim/internal/cli"
	"pdnsim/internal/fault"
	"pdnsim/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8844", "HTTP listen address")
	workers := flag.Int("workers", 0, "worker pool size (0 = min(2, GOMAXPROCS))")
	queue := flag.Int("queue", 0, fmt.Sprintf("accepted-job queue capacity before shedding with 429 (0 = %d)", serve.DefaultQueueCap))
	stateDir := flag.String("state-dir", "", "directory for the operator cache, sweep snapshots and the drain manifest (empty = in-memory only)")
	deadline := flag.Duration("deadline", 0, fmt.Sprintf("default per-job deadline (0 = %v)", serve.DefaultDeadline))
	maxDeadline := flag.Duration("max-deadline", 0, fmt.Sprintf("cap on client-requested deadlines (0 = %v)", serve.MaxDeadline))
	ckptEvery := flag.Int("checkpoint-every", 0, fmt.Sprintf("sweep points between resumable snapshots (0 = %d)", serve.DefaultCheckpointEvery))
	maxJobs := flag.Int("max-jobs", 0, fmt.Sprintf("terminal job records retained for the status API (0 = %d)", serve.DefaultMaxJobs))
	drainGrace := flag.Duration("drain-grace", 30*time.Second, "how long a drain lets in-flight jobs finish before cancelling them into snapshots")
	shardPoints := flag.Int("shard-points", 0, "sweep points per dispatch shard (0 = checkpoint-every)")
	shardLease := flag.Duration("shard-lease", 0, fmt.Sprintf("per-shard lease: a dispatch exceeding it is cancelled and requeued (0 = %v)", serve.DefaultShardLease))
	shardAttempts := flag.Int("shard-attempts", 0, fmt.Sprintf("dispatches per shard before quarantine (0 = %d)", serve.DefaultShardAttempts))
	noRecover := flag.Bool("no-recover", false, "skip replaying the job journal and queue manifest on startup")
	rearmProbe := flag.Duration("rearm-probe", 0, fmt.Sprintf("how often degraded durability probes storage to re-arm (0 = %v)", serve.DefaultRearmProbe))
	faultSchedule := flag.String("fault-schedule", "", "TESTING ONLY: seeded storage-fault schedule injected under the checkpoint filesystem, e.g. \"seed=7;journal.append:eio{times=3}\"")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: pdnserve [flags]")
		flag.PrintDefaults()
		os.Exit(cli.ExitUsage)
	}

	if *faultSchedule != "" {
		sched, err := fault.ParseSchedule(*faultSchedule)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pdnserve: -fault-schedule: %v\n", err)
			os.Exit(cli.ExitUsage)
		}
		// Installed for the process lifetime; the daemon's storage now lies
		// on purpose. Loud by design — this must never survive into a
		// production deployment unnoticed.
		checkpoint.SetFS(fault.WrapFS(checkpoint.OS(), fault.NewInjector(sched)))
		fmt.Fprintf(os.Stderr, "pdnserve: WARNING: storage-fault injection active (%s)\n", *faultSchedule)
	}

	srv := serve.New(serve.Config{
		Workers:         *workers,
		QueueCap:        *queue,
		StateDir:        *stateDir,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDeadline,
		CheckpointEvery: *ckptEvery,
		MaxJobs:         *maxJobs,
		ShardPoints:     *shardPoints,
		ShardLease:      *shardLease,
		ShardAttempts:   *shardAttempts,
		RearmProbe:      *rearmProbe,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "pdnserve: "+format+"\n", args...)
		},
	}, serve.Hooks{})

	// Jobs live under their own lifetime context, not the signal context: a
	// signal triggers the graceful drain below, and only the drain's
	// escalation (past -drain-grace) cancels in-flight work.
	jobCtx, jobCancel := context.WithCancel(context.Background())
	defer jobCancel()
	srv.Start(jobCtx)

	if *noRecover {
		if reqs, err := serve.ReadManifest(*stateDir); *stateDir != "" && err == nil && len(reqs) > 0 {
			fmt.Fprintf(os.Stderr, "pdnserve: note: %s/queue.manifest holds %d job(s) flushed by a previous drain; resubmit them via POST /jobs (recovery disabled by -no-recover)\n",
				*stateDir, len(reqs))
		}
	} else if *stateDir != "" {
		rep, err := srv.Recover()
		if err != nil {
			fmt.Fprintf(os.Stderr, "pdnserve: recovery: journal replay failed (serving without it): %v\n", err)
		}
		if rep.TruncatedTail {
			fmt.Fprintf(os.Stderr, "pdnserve: recovery: journal ended in a torn record (crash signature); replayed the valid prefix\n")
		}
		for _, id := range rep.Resubmitted {
			fmt.Fprintf(os.Stderr, "pdnserve: recovery: resubmitted job %s\n", id)
		}
		for _, f := range rep.Failed {
			fmt.Fprintf(os.Stderr, "pdnserve: recovery: unrecoverable job dropped: %s\n", f)
		}
		for _, id := range rep.SkippedBusy {
			fmt.Fprintf(os.Stderr, "pdnserve: recovery: job %s did not fit the queue; it stays journaled for the next start\n", id)
		}
		if rep.ManifestJobs > 0 {
			fmt.Fprintf(os.Stderr, "pdnserve: recovery: queue manifest held %d job(s); evicted=%v\n", rep.ManifestJobs, rep.ManifestEvicted)
		}
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	httpErr := make(chan error, 1)
	go func() { httpErr <- hs.ListenAndServe() }()

	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(os.Stderr, "pdnserve: listening on %s (state-dir=%q)\n", *addr, *stateDir)

	select {
	case err := <-httpErr:
		fmt.Fprintf(os.Stderr, "pdnserve: http server failed: %v\n", err)
		os.Exit(cli.ExitIO)
	case <-sigCtx.Done():
	}
	// Past this point a second signal kills the process the hard way.
	stop()

	fmt.Fprintf(os.Stderr, "pdnserve: signal received; draining (grace %v)\n", *drainGrace)
	graceCtx, graceCancel := context.WithTimeout(context.Background(), *drainGrace)
	defer graceCancel()
	rep := srv.Drain(graceCtx)

	// The status API stays up through the drain so clients can observe their
	// jobs' terminal states; shut HTTP down only once the drain settled.
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shutCancel()
	if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "pdnserve: http shutdown: %v\n", err)
	}

	out, _ := json.Marshal(rep)
	fmt.Fprintf(os.Stderr, "pdnserve: drained: %s\n", out)
	// Exit 0 by contract: a graceful drain is a success, whatever mix of
	// finished, snapshotted and flushed jobs it produced — all of them are
	// accounted for and resumable.
}
