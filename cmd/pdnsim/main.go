// Command pdnsim runs a SPICE-flavoured netlist deck through the MNA engine:
// the .tran and/or .ac directives in the deck select the analyses, and
// .print directives select the output columns (tab-separated).
//
// Usage:
//
//	pdnsim [-timeout 30s] [-checkpoint run.ckpt [-checkpoint-every N]] [-resume run.ckpt] deck.cir
//
// Exit codes: 2 usage, 3 parse failure, 4 solve failure, 5 I/O failure,
// 6 cancelled/timeout, 7 partial results.
//
// Long transients survive interruption: -checkpoint snapshots the solver
// state every -checkpoint-every accepted steps and flushes a final snapshot
// on SIGINT/SIGTERM/timeout; -resume restores it and continues the run,
// reproducing the uninterrupted waveforms exactly.
//
// Example deck:
//
//	plane transient
//	V1 src 0 PULSE(0 5 0 0.2n 0.2n 1n)
//	Rs src p1 50
//	T1 p1 0 p2 0 Z0=50 TD=1n
//	Rl p2 0 50
//	.tran 0.02n 5n
//	.print v(p1) v(p2) i(V1)
//	.end
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"math/cmplx"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"pdnsim/internal/checkpoint"
	"pdnsim/internal/circuit"
	"pdnsim/internal/cli"
	"pdnsim/internal/netlist"
	"pdnsim/internal/simerr"
)

// diagVerbose mirrors the -diag flag: print Info-level trust diagnostics
// (condition estimates, residuals) in addition to warnings.
var diagVerbose bool

// Checkpointing flags, read by runTran.
var (
	ckptPath  string
	ckptEvery int
	resume    string
)

func main() {
	timeout := flag.Duration("timeout", 0, "wall-clock limit for all analyses (0 = none); exceeding it exits 6")
	flag.BoolVar(&diagVerbose, "diag", false, "print the full numerical-trust trail (healthy margins included), not just warnings")
	flag.StringVar(&ckptPath, "checkpoint", "", "snapshot transient solver state to this file periodically and on interruption")
	flag.IntVar(&ckptEvery, "checkpoint-every", 0, fmt.Sprintf("accepted steps between snapshots (default %d)", checkpoint.DefaultEvery))
	flag.StringVar(&resume, "resume", "", "restore transient state from this snapshot and continue the run")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pdnsim [-timeout 30s] deck.cir")
		flag.PrintDefaults()
		os.Exit(cli.ExitUsage)
	}
	// SIGINT/SIGTERM cancel the context: the transient loop flushes a final
	// snapshot (when -checkpoint is set) and the process exits through the
	// staged cancellation code instead of dying mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		cli.Fatal(os.Stderr, "pdnsim", err, cli.ExitIO)
	}
	deck, err := netlist.Parse(string(data))
	if err != nil {
		cli.Fatal(os.Stderr, "pdnsim", err, cli.ExitParse)
	}
	fmt.Fprintf(os.Stderr, "pdnsim: %s (%d nodes)\n", deck.Title, deck.Circuit.NumNodes())
	if deck.Tran == nil && deck.AC == nil {
		// Default: operating point.
		if err := runOP(ctx, deck); err != nil {
			fatalSolve(err)
		}
		return
	}
	if deck.Tran != nil {
		if err := runTran(ctx, deck); err != nil {
			fatalSolve(err)
		}
	}
	if deck.AC != nil {
		if err := runAC(ctx, deck); err != nil {
			fatalSolve(err)
		}
	}
}

// fatalSolve exits through the staged solve codes; a cancelled run with
// checkpointing enabled first tells the user how to pick the work back up.
func fatalSolve(err error) {
	if ckptPath != "" && errors.Is(err, simerr.ErrCancelled) {
		fmt.Fprintf(os.Stderr, "pdnsim: checkpoint flushed; resume with -resume %s\n", ckptPath)
	}
	cli.Fatal(os.Stderr, "pdnsim", err, cli.SolveExitCode(err))
}

func probeHeaders(deck *netlist.Deck) []string {
	var out []string
	for _, p := range deck.Probes {
		out = append(out, fmt.Sprintf("%c(%s)", p.Kind, p.Name))
	}
	return out
}

func runOP(ctx context.Context, deck *netlist.Deck) error {
	x, err := deck.Circuit.OPCtx(ctx)
	if err != nil {
		return err
	}
	fmt.Println("operating point:")
	if len(deck.Probes) == 0 {
		for i := 1; i < deck.Circuit.NumNodes(); i++ {
			fmt.Printf("  v(%s) = %.6g\n", deck.Circuit.NodeName(i), circuit.NodeVoltage(x, i))
		}
		return nil
	}
	for _, p := range deck.Probes {
		if p.Kind == 'v' {
			n, ok := deck.Circuit.LookupNode(p.Name)
			if !ok {
				return fmt.Errorf("unknown node %q", p.Name)
			}
			fmt.Printf("  v(%s) = %.6g\n", p.Name, circuit.NodeVoltage(x, n))
		}
	}
	return nil
}

func runTran(ctx context.Context, deck *netlist.Deck) error {
	opts := *deck.Tran
	opts.Ctx = ctx
	opts.Checkpoint = checkpoint.Policy{Path: ckptPath, Every: ckptEvery}
	opts.ResumeFrom = resume
	res, err := deck.Circuit.Tran(opts)
	if err != nil {
		return err
	}
	if res.Stats.StepHalvings > 0 {
		fmt.Fprintf(os.Stderr, "pdnsim: transient recovered from %d non-convergent steps via %d timestep halvings (max depth %d)\n",
			res.Stats.StepRetries, res.Stats.StepHalvings, res.Stats.MaxHalvingDepth)
	}
	cli.PrintDiagnostics(os.Stderr, res.Diag, diagVerbose)
	cols := make([][]float64, len(deck.Probes))
	for i, p := range deck.Probes {
		switch p.Kind {
		case 'v':
			w, err := res.VByName(p.Name)
			if err != nil {
				return err
			}
			cols[i] = w
		case 'i':
			w, err := res.SourceCurrent(p.Name)
			if err != nil {
				return err
			}
			cols[i] = w
		}
	}
	fmt.Println("time\t" + strings.Join(probeHeaders(deck), "\t"))
	for k, t := range res.Time {
		row := []string{fmt.Sprintf("%.6g", t)}
		for _, c := range cols {
			row = append(row, fmt.Sprintf("%.6g", c[k]))
		}
		fmt.Println(strings.Join(row, "\t"))
	}
	return nil
}

func runAC(ctx context.Context, deck *netlist.Deck) error {
	spec := deck.AC
	fmt.Println("freq\t" + strings.Join(magPhaseHeaders(deck), "\t"))
	for k := 0; k < spec.N; k++ {
		if err := simerr.CheckCtx(ctx, "pdnsim: AC sweep"); err != nil {
			return err
		}
		f := spec.F0
		if spec.N > 1 {
			f += (spec.F1 - spec.F0) * float64(k) / float64(spec.N-1)
		}
		res, err := deck.Circuit.AC(2 * math.Pi * f)
		if err != nil {
			return err
		}
		row := []string{fmt.Sprintf("%.6g", f)}
		for _, p := range deck.Probes {
			if p.Kind != 'v' {
				row = append(row, "-", "-")
				continue
			}
			v, err := res.VByName(p.Name)
			if err != nil {
				return err
			}
			row = append(row,
				fmt.Sprintf("%.6g", cmplx.Abs(v)),
				fmt.Sprintf("%.6g", cmplx.Phase(v)*180/math.Pi))
		}
		fmt.Println(strings.Join(row, "\t"))
	}
	return nil
}

func magPhaseHeaders(deck *netlist.Deck) []string {
	var out []string
	for _, p := range deck.Probes {
		out = append(out, fmt.Sprintf("|%c(%s)|", p.Kind, p.Name),
			fmt.Sprintf("ph(%s)deg", p.Name))
	}
	return out
}
