// Command pdnsim runs a SPICE-flavoured netlist deck through the MNA engine:
// the .tran and/or .ac directives in the deck select the analyses, and
// .print directives select the output columns (tab-separated).
//
// Usage:
//
//	pdnsim deck.cir
//
// Example deck:
//
//	plane transient
//	V1 src 0 PULSE(0 5 0 0.2n 0.2n 1n)
//	Rs src p1 50
//	T1 p1 0 p2 0 Z0=50 TD=1n
//	Rl p2 0 50
//	.tran 0.02n 5n
//	.print v(p1) v(p2) i(V1)
//	.end
package main

import (
	"fmt"
	"math"
	"math/cmplx"
	"os"
	"strings"

	"pdnsim/internal/circuit"
	"pdnsim/internal/netlist"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: pdnsim deck.cir")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fatal(err)
	}
	deck, err := netlist.Parse(string(data))
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "pdnsim: %s (%d nodes)\n", deck.Title, deck.Circuit.NumNodes())
	if deck.Tran == nil && deck.AC == nil {
		// Default: operating point.
		if err := runOP(deck); err != nil {
			fatal(err)
		}
		return
	}
	if deck.Tran != nil {
		if err := runTran(deck); err != nil {
			fatal(err)
		}
	}
	if deck.AC != nil {
		if err := runAC(deck); err != nil {
			fatal(err)
		}
	}
}

func probeHeaders(deck *netlist.Deck) []string {
	var out []string
	for _, p := range deck.Probes {
		out = append(out, fmt.Sprintf("%c(%s)", p.Kind, p.Name))
	}
	return out
}

func runOP(deck *netlist.Deck) error {
	x, err := deck.Circuit.OP()
	if err != nil {
		return err
	}
	fmt.Println("operating point:")
	if len(deck.Probes) == 0 {
		for i := 1; i < deck.Circuit.NumNodes(); i++ {
			fmt.Printf("  v(%s) = %.6g\n", deck.Circuit.NodeName(i), circuit.NodeVoltage(x, i))
		}
		return nil
	}
	for _, p := range deck.Probes {
		if p.Kind == 'v' {
			n, ok := deck.Circuit.LookupNode(p.Name)
			if !ok {
				return fmt.Errorf("unknown node %q", p.Name)
			}
			fmt.Printf("  v(%s) = %.6g\n", p.Name, circuit.NodeVoltage(x, n))
		}
	}
	return nil
}

func runTran(deck *netlist.Deck) error {
	res, err := deck.Circuit.Tran(*deck.Tran)
	if err != nil {
		return err
	}
	cols := make([][]float64, len(deck.Probes))
	for i, p := range deck.Probes {
		switch p.Kind {
		case 'v':
			w, err := res.VByName(p.Name)
			if err != nil {
				return err
			}
			cols[i] = w
		case 'i':
			w, err := res.SourceCurrent(p.Name)
			if err != nil {
				return err
			}
			cols[i] = w
		}
	}
	fmt.Println("time\t" + strings.Join(probeHeaders(deck), "\t"))
	for k, t := range res.Time {
		row := []string{fmt.Sprintf("%.6g", t)}
		for _, c := range cols {
			row = append(row, fmt.Sprintf("%.6g", c[k]))
		}
		fmt.Println(strings.Join(row, "\t"))
	}
	return nil
}

func runAC(deck *netlist.Deck) error {
	spec := deck.AC
	fmt.Println("freq\t" + strings.Join(magPhaseHeaders(deck), "\t"))
	for k := 0; k < spec.N; k++ {
		f := spec.F0
		if spec.N > 1 {
			f += (spec.F1 - spec.F0) * float64(k) / float64(spec.N-1)
		}
		res, err := deck.Circuit.AC(2 * math.Pi * f)
		if err != nil {
			return err
		}
		row := []string{fmt.Sprintf("%.6g", f)}
		for _, p := range deck.Probes {
			if p.Kind != 'v' {
				row = append(row, "-", "-")
				continue
			}
			v, err := res.VByName(p.Name)
			if err != nil {
				return err
			}
			row = append(row,
				fmt.Sprintf("%.6g", cmplx.Abs(v)),
				fmt.Sprintf("%.6g", cmplx.Phase(v)*180/math.Pi))
		}
		fmt.Println(strings.Join(row, "\t"))
	}
	return nil
}

func magPhaseHeaders(deck *netlist.Deck) []string {
	var out []string
	for _, p := range deck.Probes {
		out = append(out, fmt.Sprintf("|%c(%s)|", p.Kind, p.Name),
			fmt.Sprintf("ph(%s)deg", p.Name))
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pdnsim:", err)
	os.Exit(1)
}
