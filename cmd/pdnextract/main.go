// Command pdnextract runs the paper's extraction pipeline on a JSON board
// description: geometry → quadrilateral mesh → BEM assembly → quasi-static
// RLC equivalent circuit. Outputs a SPICE-style netlist of the equivalent
// circuit, and optionally Touchstone S-parameters of the port network.
//
// Usage:
//
//	pdnextract [-timeout 5m] [-netlist out.cir] [-touchstone out.sNp -fmin 0.1e9 -fmax 10e9 -nf 100] board.json
//
// Exit codes: 2 usage, 3 parse failure, 4 solve failure, 5 I/O failure,
// 6 cancelled/timeout, 7 partial results (some sweep points skipped).
//
// Long sweeps survive interruption: -checkpoint snapshots completed points
// periodically (and on SIGINT/SIGTERM/timeout), and -resume restores them so
// a killed run recomputes only what is missing. The extraction and every
// sweep point run supervised — retryable numerical failures get bounded
// retries with escalating perturbation, and a point that still fails is
// skipped (exit 7) instead of aborting the sweep.
//
// A minimal board description:
//
//	{
//	  "name": "demo plane",
//	  "shape": {"type": "rect", "w_mm": 50, "h_mm": 40},
//	  "plane_sep_mm": 0.4, "eps_r": 4.5, "sheet_res_ohm_sq": 0.0006,
//	  "mesh_nx": 20, "mesh_ny": 16, "extra_nodes": 12,
//	  "ports": [{"name": "U1", "x_mm": 40, "y_mm": 30},
//	            {"name": "VRM", "x_mm": 5, "y_mm": 5}]
//	}
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"pdnsim/internal/bem"
	"pdnsim/internal/checkpoint"
	"pdnsim/internal/cli"
	"pdnsim/internal/core"
	"pdnsim/internal/simerr"
	"pdnsim/internal/sparam"
	"pdnsim/internal/supervise"
)

func main() {
	netlistOut := flag.String("netlist", "", "write the equivalent circuit netlist to this file ('-' for stdout)")
	tsOut := flag.String("touchstone", "", "write port S-parameters in Touchstone format to this file")
	fmin := flag.Float64("fmin", 0.1e9, "sweep start frequency (Hz)")
	fmax := flag.Float64("fmax", 10e9, "sweep stop frequency (Hz)")
	nf := flag.Int("nf", 100, "sweep points")
	z0 := flag.Float64("z0", 50, "S-parameter reference impedance (Ω)")
	irdrop := flag.String("irdrop", "", "DC IR-drop analysis: comma-separated PORT=amps load currents plus optional ref=PORT supply entry (default: first port)")
	operator := flag.String("operator", "", "override the board's solve-path operator mode: auto, dense or toeplitz")
	timeout := flag.Duration("timeout", 0, "wall-clock limit for extraction and sweeps (0 = none); exceeding it exits 6")
	diagVerbose := flag.Bool("diag", false, "print the full numerical-trust trail (healthy margins included), not just warnings")
	ckptPath := flag.String("checkpoint", "", "snapshot completed sweep points to this file periodically and on interruption")
	ckptEvery := flag.Int("checkpoint-every", 0, fmt.Sprintf("sweep points between snapshots (default %d)", checkpoint.DefaultEvery))
	resume := flag.String("resume", "", "restore completed sweep points from this snapshot before sweeping")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pdnextract [flags] board.json")
		flag.PrintDefaults()
		os.Exit(cli.ExitUsage)
	}
	if (*ckptPath != "" || *resume != "") && *tsOut == "" {
		fmt.Fprintln(os.Stderr, "pdnextract: -checkpoint/-resume apply to the S-parameter sweep; add -touchstone to run one")
	}
	// SIGINT/SIGTERM cancel the context: the sweep flushes a final snapshot
	// (when -checkpoint is set) and the run exits through the staged
	// cancellation code instead of dying mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		cli.Fatal(os.Stderr, "pdnextract", err, cli.ExitIO)
	}
	spec, err := core.ParseBoard(data)
	if err != nil {
		cli.Fatal(os.Stderr, "pdnextract", err, cli.ExitParse)
	}
	if *operator != "" {
		spec.Operator = *operator
		if err := spec.Validate(); err != nil {
			cli.Fatal(os.Stderr, "pdnextract", err, cli.ExitUsage)
		}
	}
	res, supSt, err := spec.ExtractSupervisedCtx(ctx, supervise.Policy{})
	if err != nil {
		fatalSolve(err, *ckptPath)
	}
	if supSt.Attempts > 1 {
		fmt.Fprintf(os.Stderr, "pdnextract: extraction recovered on attempt %d (diagonal regularization %.3g)\n",
			supSt.Attempts, supSt.PerturbRel)
	}
	fmt.Fprintf(os.Stderr, "%s: %s → %d-node equivalent circuit (%d ports), C_total = %.3g nF\n",
		spec.Name, res.Mesh.Stats(), res.Network.NumNodes(), res.Network.NumPorts,
		res.Network.TotalCapacitance()*1e9)
	cli.PrintDiagnostics(os.Stderr, res.Diagnostics(), *diagVerbose)

	if *netlistOut != "" {
		nl := res.Network.Netlist(spec.Name)
		if *netlistOut == "-" {
			fmt.Print(nl)
		} else if err := os.WriteFile(*netlistOut, []byte(nl), 0o644); err != nil {
			cli.Fatal(os.Stderr, "pdnextract", err, cli.ExitIO)
		}
	}
	partial := false
	if *tsOut != "" {
		freqs := sparam.LinSpace(*fmin, *fmax, *nf)
		sw, statuses, err := sparam.SweepZSupervised(ctx, freqs, sparam.SweepOptions{
			Z0:         *z0,
			Checkpoint: checkpoint.Policy{Path: *ckptPath, Every: *ckptEvery},
			ResumeFrom: *resume,
		}, res.Network.PortZCtx)
		reportSkippedPoints(statuses)
		if err != nil && !errors.Is(err, simerr.ErrPartial) {
			fatalSolve(err, *ckptPath)
		}
		if err != nil {
			// Partial completion: the surviving points are valid, so the
			// Touchstone file is still written; the exit code says "partial".
			partial = true
			fmt.Fprintf(os.Stderr, "pdnextract: %s\n", cli.Describe(err))
		}
		ts, err := sw.Touchstone(spec.Name)
		if err != nil {
			fatalSolve(err, *ckptPath)
		}
		if err := os.WriteFile(*tsOut, []byte(ts), 0o644); err != nil {
			cli.Fatal(os.Stderr, "pdnextract", err, cli.ExitIO)
		}
		// Physics-invariant screen: the sweep already carries its passivity
		// and reciprocity margins plus the supervision trail (print before
		// re-running Verify — it rebuilds the trail from scratch); a gross
		// violation fails the run.
		cli.PrintDiagnostics(os.Stderr, sw.Diag, *diagVerbose)
		if verr := sw.Verify(); verr != nil {
			fatalSolve(verr, *ckptPath)
		}
	}
	if *irdrop != "" {
		if err := runIRDrop(spec, res, *irdrop); err != nil {
			fatalSolve(err, *ckptPath)
		}
	}
	if partial {
		os.Exit(cli.ExitPartial)
	}
}

// reportSkippedPoints prints the per-point supervision outcomes worth a
// human's attention: skipped points and points that needed retries.
func reportSkippedPoints(statuses []sparam.PointStatus) {
	for _, st := range statuses {
		switch {
		case st.Err != nil:
			fmt.Fprintf(os.Stderr, "pdnextract: point %g Hz skipped after %d attempts: %v\n",
				st.Freq, st.Attempts, st.Err)
		case st.Attempts > 1:
			fmt.Fprintf(os.Stderr, "pdnextract: point %g Hz recovered on attempt %d (perturbation %.3g)\n",
				st.Freq, st.Attempts, st.PerturbRel)
		}
	}
}

// fatalSolve exits through the staged solve codes; a cancelled run with
// checkpointing enabled first tells the user how to pick the work back up.
func fatalSolve(err error, ckptPath string) {
	if ckptPath != "" && errors.Is(err, simerr.ErrCancelled) {
		fmt.Fprintf(os.Stderr, "pdnextract: checkpoint flushed; resume with -resume %s\n", ckptPath)
	}
	cli.Fatal(os.Stderr, "pdnextract", err, cli.SolveExitCode(err))
}

// runIRDrop solves the plane's DC resistive network for the requested load
// currents and reports the worst drop and current density.
func runIRDrop(spec *core.BoardSpec, res *core.Result, arg string) error {
	portCell := map[string]int{}
	for _, p := range res.Mesh.Ports {
		portCell[p.Name] = p.Cell
	}
	injections := map[int]float64{}
	ref := res.Mesh.Ports[0].Cell
	refName := res.Mesh.Ports[0].Name
	for _, item := range strings.Split(arg, ",") {
		kv := strings.SplitN(strings.TrimSpace(item), "=", 2)
		if len(kv) != 2 {
			return fmt.Errorf("bad -irdrop item %q (want PORT=amps or ref=PORT)", item)
		}
		if kv[0] == "ref" {
			cell, ok := portCell[kv[1]]
			if !ok {
				return fmt.Errorf("-irdrop references unknown supply port %q", kv[1])
			}
			ref, refName = cell, kv[1]
			continue
		}
		cell, ok := portCell[kv[0]]
		if !ok {
			return fmt.Errorf("-irdrop references unknown port %q", kv[0])
		}
		amps, err := strconv.ParseFloat(kv[1], 64)
		if err != nil {
			return fmt.Errorf("bad current in %q", item)
		}
		injections[cell] = amps
	}
	v, err := res.Assembly.DCPotential(injections, ref)
	if err != nil {
		return err
	}
	cur, err := res.Assembly.DCCurrents(v)
	if err != nil {
		return err
	}
	fmt.Printf("IR drop (supply reference: port %s):\n", refName)
	for _, p := range res.Mesh.Ports {
		fmt.Printf("  %-12s %8.3f mV\n", p.Name, v[p.Cell]*1e3)
	}
	fmt.Printf("  worst drop: %.3f mV, worst current density: %.1f A/m\n",
		bem.WorstIRDrop(v)*1e3, res.Assembly.WorstCurrentDensity(cur))
	_ = spec
	return nil
}
