// Command pdnlint is the project's static-analysis suite: five analyzers
// that mechanically enforce the solver's safety contracts (see DESIGN.md
// §5e):
//
//	errwrap  — errors built in internal/ must carry simerr class identity
//	ctxflow  — long-running exported loops accept and check a context;
//	           context.Background only in package main
//	floateq  — no ==/!= on floats except against constant zero
//	magictol — tolerance literals in comparisons must be named constants
//	paraloop — goroutine bodies index-partition or lock shared writes
//
// Usage:
//
//	pdnlint [-json] [packages]
//
// With no arguments (or "./...") the whole module containing the current
// directory is analyzed. Specific package directories can be named instead.
// Findings go to stdout, one per line (file:line:col: [analyzer] message),
// or as a JSON array with -json for tooling that tracks the finding count
// as a trajectory metric. A site may opt out with a trailing or preceding
//
//	//pdnlint:ignore <analyzer> <reason>
//
// comment; the reason is mandatory (an undocumented ignore is itself a
// finding) and a directive in a function's doc comment covers the whole
// function.
//
// Exit status: 0 clean, 1 findings, 2 load or internal failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"pdnsim/cmd/pdnlint/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array (file, line, col, analyzer, message)")
	verbose := flag.Bool("v", false, "list analyzed packages on stderr")
	flag.Parse()

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdnlint:", err)
		os.Exit(2)
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdnlint:", err)
		os.Exit(2)
	}
	if sel := selectPackages(pkgs, flag.Args(), loader.ModuleRoot); sel != nil {
		pkgs = sel
	}
	if *verbose {
		for _, p := range pkgs {
			fmt.Fprintln(os.Stderr, "pdnlint: analyzing", p.Path)
		}
	}
	findings := lint.Run(pkgs, lint.Analyzers, loader.ModuleRoot)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "pdnlint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "pdnlint: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
}

// selectPackages filters the loaded packages by the command-line patterns:
// "./..." (or nothing) keeps everything, "dir/..." keeps the subtree, a
// plain directory keeps that package. Returns nil for "keep everything".
func selectPackages(pkgs []*lint.Package, args []string, root string) []*lint.Package {
	if len(args) == 0 {
		return nil
	}
	var keep []*lint.Package
	for _, arg := range args {
		if arg == "./..." || arg == "..." {
			return nil
		}
		subtree := strings.HasSuffix(arg, "/...")
		arg = strings.TrimSuffix(arg, "/...")
		abs, err := filepath.Abs(arg)
		if err != nil {
			continue
		}
		for _, p := range pkgs {
			pdir, err := filepath.Abs(p.Dir)
			if err != nil {
				continue
			}
			if pdir == abs || (subtree && strings.HasPrefix(pdir+string(filepath.Separator), abs+string(filepath.Separator))) {
				keep = append(keep, p)
			}
		}
	}
	return keep
}
