// Command pdnlint is the project's static-analysis suite: nine analyzers
// that mechanically enforce the solver's and daemon's safety contracts
// (see DESIGN.md §5e and §5j):
//
//	errwrap  — errors built in internal/ must carry simerr class identity
//	ctxflow  — long-running exported loops accept and check a context;
//	           context.Background only in package main; no bare time.Sleep
//	floateq  — no ==/!= on floats except against constant zero
//	magictol — tolerance literals in comparisons must be named constants
//	paraloop — goroutine bodies index-partition or lock shared writes
//	lockhold — no blocking op (channel, file I/O, fsync, HTTP, sleep)
//	           while a sync mutex is held; lock order must be acyclic
//	goleak   — every go statement has a provable exit path; daemon
//	           packages account for their goroutines
//	durable  — checkpoint/journal/manifest files go through the
//	           internal/checkpoint envelope; no rename without fsync
//	hotalloc — no allocation, boxing, defer, or map access in //pdn:hot
//	           annotated kernel loops
//
// Usage:
//
//	pdnlint [-json | -sarif] [packages]
//
// With no arguments (or "./...") the whole module containing the current
// directory is analyzed. Specific package directories can be named instead.
// Findings go to stdout, one per line (file:line:col: [analyzer] message),
// as a JSON array with -json, or as a SARIF 2.1.0 report with -sarif for
// code-scanning upload. A site may opt out with a trailing or preceding
//
//	//pdnlint:ignore <analyzer> <reason>
//
// comment; the reason is mandatory (an undocumented ignore is itself a
// finding) and a directive in a function's doc comment covers the whole
// function.
//
// Exit status: 0 clean, 1 findings, 2 load or internal failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"pdnsim/cmd/pdnlint/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable driver: parse flags, load, analyze, encode. The
// return value is the process exit status (0 clean, 1 findings, 2 usage /
// load / internal failure).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pdnlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array (file, line, col, analyzer, message)")
	sarifOut := fs.Bool("sarif", false, "emit findings as a SARIF 2.1.0 report (code-scanning upload format)")
	verbose := fs.Bool("v", false, "list analyzed packages on stderr")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(stderr, "pdnlint: -json and -sarif are mutually exclusive")
		return 2
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(stderr, "pdnlint:", err)
		return 2
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		fmt.Fprintln(stderr, "pdnlint:", err)
		return 2
	}
	if sel := selectPackages(pkgs, fs.Args(), loader.ModuleRoot); sel != nil {
		pkgs = sel
	}
	if *verbose {
		for _, p := range pkgs {
			fmt.Fprintln(stderr, "pdnlint: analyzing", p.Path)
		}
	}
	findings := lint.Run(pkgs, lint.Analyzers, loader.ModuleRoot)
	switch {
	case *sarifOut:
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(lint.SARIFReport(findings, lint.Analyzers)); err != nil {
			fmt.Fprintln(stderr, "pdnlint:", err)
			return 2
		}
	case *jsonOut:
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(stderr, "pdnlint:", err)
			return 2
		}
	default:
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut && !*sarifOut {
			fmt.Fprintf(stderr, "pdnlint: %d finding(s)\n", len(findings))
		}
		return 1
	}
	return 0
}

// selectPackages filters the loaded packages by the command-line patterns:
// "./..." (or nothing) keeps everything, "dir/..." keeps the subtree, a
// plain directory keeps that package. Returns nil for "keep everything".
func selectPackages(pkgs []*lint.Package, args []string, root string) []*lint.Package {
	if len(args) == 0 {
		return nil
	}
	var keep []*lint.Package
	for _, arg := range args {
		if arg == "./..." || arg == "..." {
			return nil
		}
		subtree := strings.HasSuffix(arg, "/...")
		arg = strings.TrimSuffix(arg, "/...")
		abs, err := filepath.Abs(arg)
		if err != nil {
			continue
		}
		for _, p := range pkgs {
			pdir, err := filepath.Abs(p.Dir)
			if err != nil {
				continue
			}
			if pdir == abs || (subtree && strings.HasPrefix(pdir+string(filepath.Separator), abs+string(filepath.Separator))) {
				keep = append(keep, p)
			}
		}
	}
	return keep
}
