// Package lint is the engine behind pdnlint, the project's static-analysis
// suite. It loads the module's packages with full type information using
// only the standard library (go/parser + go/types with a source importer,
// so no external dependency is needed), runs a set of project-specific
// analyzers over them, and filters the findings through //pdnlint:ignore
// escape-hatch directives.
//
// The analyzers enforce the solver's and daemon's safety contracts — the
// typed-error taxonomy of internal/simerr, context cancellation through
// long-running loops, tolerance-based floating-point comparison, auditable
// tolerance constants, partitioned writes in parallel fills, lock-holding
// discipline and acquisition order, goroutine lifecycle accounting,
// checkpoint durability routing, and allocation-free //pdn:hot kernels.
// See the Analyzers variable for the roster and DESIGN.md §5e/§5j for the
// rationale of each.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// RawFinding is what an analyzer reports: a position in the package's file
// set and a message. The engine resolves it to a Finding, applying ignore
// directives.
type RawFinding struct {
	Pos     token.Pos
	Message string
}

// Analyzer is one static check. Run inspects a fully type-checked package
// and reports findings; it must not mutate the package.
type Analyzer struct {
	Name string // short lowercase identifier, used in ignore directives
	Doc  string // one-line description of the enforced contract
	Run  func(p *Package) []RawFinding
}

// Analyzers is the full pdnlint roster, in reporting order. Everything —
// the CLI, `make lint`, the SARIF rules table, TestWholeModuleIsClean —
// derives its analyzer set from this variable, so adding an analyzer here
// is the whole registration.
var Analyzers = []*Analyzer{Errwrap, Ctxflow, Floateq, Magictol, Paraloop, Lockhold, Goleak, Durable, Hotalloc}

// Finding is a resolved diagnostic, ready for text or JSON output. File is
// relative to the module root when the engine can make it so.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Package is a parsed and type-checked package plus the metadata the
// analyzers and the directive filter need.
type Package struct {
	Path  string // import path ("pdnsim/internal/mat")
	Dir   string // directory the files were loaded from
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	directives []directive
}

// directive is one parsed //pdnlint:ignore comment. It suppresses findings
// of one analyzer on the directive's own line and the following line, or —
// when it appears in a function's doc comment — across the whole function.
type directive struct {
	analyzer string
	reason   string
	file     string
	line     int // line the directive itself is on
	from, to int // suppressed line range, inclusive
}

// ignorePrefix starts every escape-hatch comment. The full form is
//
//	//pdnlint:ignore <analyzer> <reason>
//
// A missing reason is itself a finding: the whole point of the directive is
// an auditable record of why the contract is waived at that site.
const ignorePrefix = "//pdnlint:ignore"

// scanDirectives parses every ignore directive in the package and computes
// its suppression range.
func (p *Package) scanDirectives() {
	for _, f := range p.Files {
		// Function doc ranges: a directive inside a doc comment covers the
		// whole declaration.
		type span struct{ docFrom, docTo, from, to int }
		var funcSpans []span
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			funcSpans = append(funcSpans, span{
				docFrom: p.Fset.Position(fd.Doc.Pos()).Line,
				docTo:   p.Fset.Position(fd.Doc.End()).Line,
				from:    p.Fset.Position(fd.Pos()).Line,
				to:      p.Fset.Position(fd.End()).Line,
			})
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				// A further "//" ends the directive (it starts an ordinary
				// trailing remark, e.g. the test harness's want patterns).
				if i := strings.Index(rest, "//"); i >= 0 {
					rest = rest[:i]
				}
				fields := strings.Fields(rest)
				d := directive{file: pos.Filename, line: pos.Line, from: pos.Line, to: pos.Line + 1}
				if len(fields) > 0 {
					d.analyzer = fields[0]
				}
				if len(fields) > 1 {
					d.reason = strings.Join(fields[1:], " ")
				}
				for _, s := range funcSpans {
					if pos.Line >= s.docFrom && pos.Line <= s.docTo {
						d.from, d.to = s.from, s.to
						break
					}
				}
				p.directives = append(p.directives, d)
			}
		}
	}
}

// suppressed reports whether a finding of the named analyzer at pos is
// covered by a documented ignore directive. Undocumented directives (no
// reason) never suppress: they are themselves findings.
func (p *Package) suppressed(analyzer string, pos token.Position) bool {
	for _, d := range p.directives {
		if d.analyzer == analyzer && d.reason != "" &&
			d.file == pos.Filename && pos.Line >= d.from && pos.Line <= d.to {
			return true
		}
	}
	return false
}

// Run executes the analyzers over the packages, resolves positions, applies
// ignore directives, validates the directives themselves, and returns the
// surviving findings sorted by file, line and analyzer. trimPrefix, when
// non-empty, is stripped from file names (pass the module root for
// repo-relative paths).
func Run(pkgs []*Package, analyzers []*Analyzer, trimPrefix string) []Finding {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var out []Finding
	rel := func(name string) string {
		if trimPrefix != "" {
			return strings.TrimPrefix(name, strings.TrimSuffix(trimPrefix, "/")+"/")
		}
		return name
	}
	for _, p := range pkgs {
		for _, a := range analyzers {
			for _, rf := range a.Run(p) {
				pos := p.Fset.Position(rf.Pos)
				if p.suppressed(a.Name, pos) {
					continue
				}
				out = append(out, Finding{
					File: rel(pos.Filename), Line: pos.Line, Col: pos.Column,
					Analyzer: a.Name, Message: rf.Message,
				})
			}
		}
		// Directive hygiene: every ignore needs a known analyzer and a
		// reason. These findings cannot themselves be ignored.
		for _, d := range p.directives {
			switch {
			case !known[d.analyzer]:
				out = append(out, Finding{
					File: rel(d.file), Line: d.line, Col: 1, Analyzer: "pdnlint",
					Message: fmt.Sprintf("ignore directive names unknown analyzer %q", d.analyzer),
				})
			case d.reason == "":
				out = append(out, Finding{
					File: rel(d.file), Line: d.line, Col: 1, Analyzer: "pdnlint",
					Message: "undocumented ignore: write //pdnlint:ignore <analyzer> <reason>",
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// calleeFunc resolves the function or method a call expression invokes,
// through any parentheses; nil when the callee is not a declared function
// (function-typed variables, conversions, built-ins).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
