package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// Floateq flags == and != between floating-point or complex operands.
// Exact equality on computed floats is the classic catastrophic-cancellation
// trap: two mathematically equal quantities differ in the last ulps after
// different round-off paths, so the comparison silently flips. Allowed:
//
//   - comparison against an exact constant zero (testing "never assigned" /
//     "exactly symmetric" / underflow-flushed values is legitimate, and the
//     project convention is an explicit guard before dividing);
//   - comparisons where both operands are compile-time constants.
//
// Everything else must go through a named tolerance
// (math.Abs(a-b) <= tol, cmplx.Abs for complex).
var Floateq = &Analyzer{
	Name: "floateq",
	Doc:  "no ==/!= on float64/complex128 operands except against constant zero",
	Run:  runFloateq,
}

func runFloateq(p *Package) []RawFinding {
	var out []RawFinding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			xt, xok := p.Info.Types[be.X]
			yt, yok := p.Info.Types[be.Y]
			if !xok || !yok {
				return true
			}
			if !isFloatish(xt.Type) && !isFloatish(yt.Type) {
				return true
			}
			if xt.Value != nil && yt.Value != nil {
				return true // compile-time comparison, exact by definition
			}
			if isConstZero(xt.Value) || isConstZero(yt.Value) {
				return true
			}
			out = append(out, RawFinding{Pos: be.OpPos, Message: fmt.Sprintf("%s on floating-point operands is exact to the last ulp; compare through a named tolerance (or against constant zero behind a guard)", be.Op)})
			return true
		})
	}
	return out
}

// isFloatish reports whether t's underlying type is a float or complex
// basic type (including untyped float constants).
func isFloatish(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// isConstZero reports whether v is a compile-time constant equal to zero
// (real and imaginary parts for complex values).
func isConstZero(v constant.Value) bool {
	if v == nil {
		return false
	}
	switch v.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(v) == 0
	case constant.Complex:
		return constant.Sign(constant.Real(v)) == 0 && constant.Sign(constant.Imag(v)) == 0
	}
	return false
}
