package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// Durable enforces the crash-durability contract of PR 4/7 (DESIGN.md
// §5j): state that recovery depends on must reach disk through the
// internal/checkpoint envelope — CRC-32C framing, tmp+fsync+rename
// publication, append-only fsync'd journal records. Two rules:
//
//  1. A raw os.WriteFile / os.Create / os.CreateTemp / os.OpenFile /
//     os.Rename whose path carries a durable marker ("checkpoint",
//     ".ckpt", "journal", "manifest", "snapshot", ".opc" — matched
//     case-insensitively against string constants in the call's arguments
//     or in the initializers of path variables it uses) bypasses the
//     envelope: no checksum, no atomic publication, and recovery will
//     happily replay torn bytes. internal/checkpoint itself is exempt —
//     it *is* the envelope.
//
//  2. os.Rename without a positionally preceding (*os.File).Sync in the
//     same function publishes a file whose contents may not be durable
//     yet: after a crash the new name can point at empty or truncated
//     data, which is exactly the torn-write class the envelope's
//     stage → fsync → rename discipline exists to prevent.
//
//  3. A rename through the checkpoint filesystem seam ((checkpoint.FS)
//     .Rename) without a positionally following SyncDir *of the
//     destination's parent directory* in the same function leaves the
//     *rename itself* undurable: the file's bytes may be fsynced, but the
//     directory entry pointing the new name at them is not, and a crash
//     can roll the publication back. The SyncDir argument must be tied to
//     the rename's destination — filepath.Dir(dst), or a directory
//     expression the destination is built from, each chased one hop
//     through local initializers — so a SyncDir of an unrelated directory
//     cannot silence the rule. The check remains control-flow-insensitive:
//     a matching SyncDir anywhere after the rename satisfies it, even on a
//     branch the rename's path never reaches — position and argument
//     identity are a heuristic, not a dominator analysis. Rule 3 applies
//     everywhere — including inside internal/checkpoint, which is exempt
//     from rules 1–2 because it is the envelope but must still close its
//     own directory barriers. Functions themselves named Rename are exempt:
//     they are delegating seam implementations (fault injection, spies),
//     not publications.
var Durable = &Analyzer{
	Name: "durable",
	Doc:  "checkpoint/journal/manifest files must go through internal/checkpoint; no rename without a preceding fsync, no seam rename without a following dir sync",
	Run:  runDurable,
}

// durableMarkers are the path fragments that mark a file as
// recovery-critical, matched case-insensitively.
var durableMarkers = []string{"checkpoint", ".ckpt", "journal", "manifest", "snapshot", ".opc"}

// rawFileCalls are the os entry points rule 1 polices.
var rawFileCalls = map[string]bool{
	"os.WriteFile":  true,
	"os.Create":     true,
	"os.CreateTemp": true,
	"os.OpenFile":   true,
	"os.Rename":     true,
}

func runDurable(p *Package) []RawFinding {
	// The envelope implementation is the one place raw durable I/O belongs,
	// so rules 1–2 skip it; rule 3 polices the seam's own dir barriers
	// there too.
	envelope := p.Path == "pdnsim/internal/checkpoint"
	var out []RawFinding
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !envelope {
				out = append(out, checkDurableFunc(p, fd)...)
			}
			out = append(out, checkSeamRenames(p, fd)...)
		}
	}
	return out
}

// Rule 3's anchors: the filesystem seam's rename, and the two spellings of
// a directory barrier that make it durable.
const (
	fsRenameFull   = "(pdnsim/internal/checkpoint.FS).Rename"
	fsSyncDirFull  = "(pdnsim/internal/checkpoint.FS).SyncDir"
	pkgSyncDirFull = "pdnsim/internal/checkpoint.SyncDir"
)

// checkSeamRenames enforces rule 3: every (checkpoint.FS).Rename must be
// positionally followed by a SyncDir call, in the same function, whose
// directory argument is tied to the rename's destination.
func checkSeamRenames(p *Package, fd *ast.FuncDecl) []RawFinding {
	if fd.Name.Name == "Rename" {
		return nil // delegating seam implementations, not publications
	}
	var renames, syncDirs []*ast.CallExpr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(p.Info, call)
		if fn == nil {
			return true
		}
		switch fn.FullName() {
		case fsRenameFull:
			renames = append(renames, call)
		case fsSyncDirFull, pkgSyncDirFull:
			syncDirs = append(syncDirs, call)
		}
		return true
	})
	if len(renames) == 0 {
		return nil
	}
	inits := collectInits(p, fd)
	var out []RawFinding
	for _, r := range renames {
		followed := false
		for _, s := range syncDirs {
			if s.Pos() > r.Pos() && syncDirCoversRename(p, inits, s, r) {
				followed = true
				break
			}
		}
		if !followed {
			out = append(out, RawFinding{Pos: r.Pos(), Message: "checkpoint FS.Rename without a following SyncDir of the destination's parent directory in the same function: the bytes may be fsynced but the rename is not — sync the renamed file's parent directory to make the publication survive a crash"})
		}
	}
	return out
}

// syncDirCoversRename reports whether the SyncDir call sd plausibly makes
// the rename r's publication durable: its directory argument resolves to
// the destination's parent. Two shapes are recognised, each chased one hop
// through local initializers — filepath.Dir(X) where X is (or appears in)
// the rename's destination expression, and a bare directory expression the
// destination is built from (filepath.Join(dir, name) synced via
// SyncDir(dir)). An argument matching neither shape does not count: a
// SyncDir of some unrelated directory must not silence the rule.
func syncDirCoversRename(p *Package, inits map[types.Object][]ast.Expr, sd, r *ast.CallExpr) bool {
	if len(r.Args) < 2 || len(sd.Args) < 1 {
		return true // malformed call; the type checker owns this
	}
	dest := r.Args[1]
	for _, dir := range expandExpr(p.Info, inits, sd.Args[0]) {
		if call, ok := dir.(*ast.CallExpr); ok {
			if fn := calleeFunc(p.Info, call); fn != nil && fn.FullName() == "path/filepath.Dir" && len(call.Args) == 1 {
				for _, x := range expandExpr(p.Info, inits, call.Args[0]) {
					if exprMentions(p.Info, inits, dest, x) {
						return true
					}
				}
				continue
			}
		}
		if exprMentions(p.Info, inits, dest, dir) {
			return true
		}
	}
	return false
}

// expandExpr returns e plus, when e is a local identifier, the initializer
// expressions it was assigned from — one hop, enough for the
// `dir := filepath.Dir(path)` spelling without risking cycles.
func expandExpr(info *types.Info, inits map[types.Object][]ast.Expr, e ast.Expr) []ast.Expr {
	out := []ast.Expr{e}
	if id, ok := e.(*ast.Ident); ok {
		if obj := info.Uses[id]; obj != nil {
			out = append(out, inits[obj]...)
		}
	}
	return out
}

// exprMentions reports whether the destination expression — or, one hop
// deep, an initializer it was assigned from — contains a subexpression
// textually identical to target. Textual identity (types.ExprString on
// both sides) compares j.path with j.path and dir with dir without needing
// resolvable objects for selector chains.
func exprMentions(info *types.Info, inits map[types.Object][]ast.Expr, dest, target ast.Expr) bool {
	want := types.ExprString(target)
	for _, d := range expandExpr(info, inits, dest) {
		found := false
		ast.Inspect(d, func(n ast.Node) bool {
			if found {
				return false
			}
			if e, ok := n.(ast.Expr); ok && types.ExprString(e) == want {
				found = true
				return false
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// collectInits builds the map from local variables to their initializer
// expressions within fd, so a marker constant or directory expression can
// be chased through `path := filepath.Join(dir, "x.journal")`.
func collectInits(p *Package, fd *ast.FuncDecl) map[types.Object][]ast.Expr {
	inits := map[types.Object][]ast.Expr{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(s.Rhs) {
					continue
				}
				if obj := p.Info.Defs[id]; obj != nil {
					inits[obj] = append(inits[obj], s.Rhs[i])
				} else if obj := p.Info.Uses[id]; obj != nil {
					inits[obj] = append(inits[obj], s.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			for i, name := range s.Names {
				if i < len(s.Values) {
					if obj := p.Info.Defs[name]; obj != nil {
						inits[obj] = append(inits[obj], s.Values[i])
					}
				}
			}
		}
		return true
	})
	return inits
}

func checkDurableFunc(p *Package, fd *ast.FuncDecl) []RawFinding {
	inits := collectInits(p, fd)

	var out []RawFinding
	var syncs, renames []*ast.CallExpr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(p.Info, call)
		if fn == nil {
			return true
		}
		switch full := fn.FullName(); {
		case full == "(*os.File).Sync":
			syncs = append(syncs, call)
		case rawFileCalls[full]:
			if full == "os.Rename" {
				renames = append(renames, call)
			}
			if marker, ok := durableMarkerInArgs(p.Info, call, inits); ok {
				out = append(out, RawFinding{Pos: call.Pos(), Message: fmt.Sprintf(
					"raw %s on a durable path (%q): checkpoint/journal/manifest state must go through the internal/checkpoint envelope (Save, Journal) for CRC framing and atomic publication", full, marker)})
			}
		}
		return true
	})
	for _, r := range renames {
		synced := false
		for _, s := range syncs {
			if s.Pos() < r.Pos() {
				synced = true
				break
			}
		}
		if !synced {
			out = append(out, RawFinding{Pos: r.Pos(), Message: "os.Rename without a preceding (*os.File).Sync in the same function can publish undurable bytes; stage, fsync, then rename (checkpoint.Save's discipline)"})
		}
	}
	return out
}

// durableMarkerInArgs scans the call's arguments — and, one hop deep, the
// initializers of variables those arguments use — for a string constant
// carrying a durable marker.
func durableMarkerInArgs(info *types.Info, call *ast.CallExpr, inits map[types.Object][]ast.Expr) (string, bool) {
	var consts []string
	for _, a := range call.Args {
		collectStringConsts(info, a, inits, 2, &consts)
	}
	for _, c := range consts {
		lc := strings.ToLower(c)
		for _, m := range durableMarkers {
			if strings.Contains(lc, m) {
				return c, true
			}
		}
	}
	return "", false
}

// collectStringConsts gathers string constants from an expression tree,
// following identifiers to their in-function initializers up to depth
// hops (enough for path := filepath.Join(dir, name) chains without
// risking cycles).
func collectStringConsts(info *types.Info, e ast.Expr, inits map[types.Object][]ast.Expr, depth int, out *[]string) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.Ident:
			if tv, ok := info.Types[x]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
				*out = append(*out, constant.StringVal(tv.Value))
				return false
			}
			if depth > 0 {
				if obj := info.Uses[x]; obj != nil {
					for _, init := range inits[obj] {
						collectStringConsts(info, init, inits, depth-1, out)
					}
				}
			}
		case *ast.BasicLit:
			if tv, ok := info.Types[x]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
				*out = append(*out, constant.StringVal(tv.Value))
			}
		}
		return true
	})
}
