package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// Ctxflow enforces the cancellation contract threaded through the solver in
// PR 1: long-running work must be interruptible. Three rules:
//
//  1. context.Background() / context.TODO() are forbidden outside package
//     main (where the root context legitimately originates) and _test.go
//     files (which are not analyzed). The documented non-Ctx compatibility
//     shims carry a //pdnlint:ignore ctxflow directive — that is what the
//     escape hatch is for.
//  2. An exported function or method that accepts a context.Context and
//     contains at least one loop must use the context *inside* a loop body
//     (a simerr.CheckCtx call, a select, passing ctx to a callee doing the
//     real work) or inside a function literal (per-item work handed to a
//     driver such as mat.ParallelFor). A ctx checked only at entry leaves
//     the frequency / timestep / cell loop that follows uncancellable for
//     its whole run. Stage-granular pipelines whose loops are trivial
//     bookkeeping between ctx-checked O(n³) stages document that with an
//     ignore directive rather than sprinkling no-op checks.
//  3. An accepted context.Context must be used at all; a dropped ctx
//     parameter advertises cancellability the implementation does not have.
//  4. time.Sleep is forbidden everywhere (tests are not analyzed): a bare
//     sleep cannot observe cancellation, so a cancelled job or a draining
//     daemon sits out the full delay. Wait on a timer inside a select with
//     ctx.Done() instead — internal/supervise's backoff does exactly this
//     and is the pattern to copy; a deliberate uncancellable pause
//     documents itself with an ignore directive.
var Ctxflow = &Analyzer{
	Name: "ctxflow",
	Doc:  "long-running exported loops must accept and check a context.Context; no context.Background outside main; no bare time.Sleep",
	Run:  runCtxflow,
}

func runCtxflow(p *Package) []RawFinding {
	var out []RawFinding
	isMain := p.Types.Name() == "main"
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := calleeFunc(p.Info, call); fn != nil {
				switch fn.FullName() {
				case "context.Background", "context.TODO":
					if !isMain {
						out = append(out, RawFinding{Pos: call.Pos(), Message: fn.FullName() + "() outside package main pins an uncancellable context; thread a ctx parameter (documented compatibility shims use //pdnlint:ignore ctxflow <reason>)"})
					}
				case "time.Sleep":
					out = append(out, RawFinding{Pos: call.Pos(), Message: "time.Sleep cannot observe cancellation; wait on a timer inside a select with ctx.Done (the supervise backoff pattern), or document the uncancellable pause with an ignore"})
				}
			}
			return true
		})
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			ctxParams := contextParams(p.Info, fd)
			if len(ctxParams) == 0 {
				continue
			}
			loops, used, usedInLoop := ctxUsage(p.Info, fd.Body, ctxParams)
			switch {
			case !used:
				out = append(out, RawFinding{Pos: fd.Name.Pos(), Message: fmt.Sprintf("%s accepts a context.Context but never uses it; check it (simerr.CheckCtx) or drop the parameter", fd.Name.Name)})
			case loops > 0 && !usedInLoop:
				out = append(out, RawFinding{Pos: fd.Name.Pos(), Message: fmt.Sprintf("%s loops without checking ctx inside the loop; a run is uncancellable once the loop starts — call simerr.CheckCtx (or select on ctx.Done) in the loop body", fd.Name.Name)})
			}
		}
	}
	return out
}

// contextParams returns the objects of the function's context.Context
// parameters.
func contextParams(info *types.Info, fd *ast.FuncDecl) []types.Object {
	var objs []types.Object
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := info.Defs[name]
			if obj != nil && isContextType(obj.Type()) {
				objs = append(objs, obj)
			}
		}
	}
	return objs
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// ctxUsage walks body counting for/range loops and recording whether any of
// the ctx objects is referenced at all, and whether one is referenced
// inside a loop body.
func ctxUsage(info *types.Info, body *ast.BlockStmt, ctxs []types.Object) (loops int, used, usedInLoop bool) {
	isCtx := func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return false
		}
		obj := info.Uses[id]
		for _, c := range ctxs {
			if obj == c {
				return true
			}
		}
		return false
	}
	var walk func(n ast.Node, inLoop bool)
	walk = func(n ast.Node, inLoop bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch s := m.(type) {
			case *ast.ForStmt:
				loops++
				if s.Init != nil {
					walk(s.Init, inLoop)
				}
				if s.Cond != nil {
					walk(s.Cond, inLoop)
				}
				if s.Post != nil {
					walk(s.Post, inLoop)
				}
				walk(s.Body, true)
				return false
			case *ast.RangeStmt:
				loops++
				walk(s.X, inLoop)
				walk(s.Body, true)
				return false
			case *ast.FuncLit:
				// A closure referencing ctx is per-item work handed to a
				// driver (mat.ParallelFor, a sweep evaluator): the check
				// happens once per invocation, which satisfies the contract.
				walk(s.Body, true)
				return false
			default:
				if m != nil && isCtx(m) {
					used = true
					if inLoop {
						usedInLoop = true
					}
				}
			}
			return true
		})
	}
	walk(body, false)
	return loops, used, usedInLoop
}
