package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"math"
)

// magicTolMax is the magnitude below which a float literal in a comparison
// is treated as a tolerance rather than a physical quantity. Frequency
// bounds (2.5e9), geometry (1e-3 m) and unit factors sit at or above this
// scale; convergence tolerances, symmetry bands, underflow guards and CFL
// margins sit far below it. Anything under 1e-3 used directly in a
// comparison is a numerical trust threshold and must be auditable.
const magicTolMax = 1e-3

// Magictol enforces that tolerance-scale literals are not buried inline in
// comparisons. A 1e-9 in `if v <= 1e-9*scale` encodes a paper-derived or
// empirically tuned trust bound; as an anonymous literal it cannot be
// audited, cross-referenced by the diagnostics layer, or kept consistent
// across call sites. Every such literal must be promoted to a named
// package-level constant whose doc comment states its provenance. Zero is
// exempt (exact-zero guards are floateq's domain), as is anything at or
// above magicTolMax.
var Magictol = &Analyzer{
	Name: "magictol",
	Doc:  "tolerance literals in comparisons must be named, documented package-level constants",
	Run:  runMagictol,
}

func runMagictol(p *Package) []RawFinding {
	var out []RawFinding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || !isComparison(be.Op) {
				return true
			}
			// A comparison of two compile-time constants is a static fact,
			// not a runtime trust threshold.
			if xt, yt := p.Info.Types[be.X], p.Info.Types[be.Y]; xt.Value != nil && yt.Value != nil {
				return true
			}
			for _, side := range []ast.Expr{be.X, be.Y} {
				ast.Inspect(side, func(m ast.Node) bool {
					lit, ok := m.(*ast.BasicLit)
					if !ok || lit.Kind != token.FLOAT {
						return true
					}
					tv, ok := p.Info.Types[ast.Expr(lit)]
					if !ok || tv.Value == nil {
						return true
					}
					v, _ := constant.Float64Val(constant.ToFloat(tv.Value))
					if v == 0 || math.Abs(v) >= magicTolMax {
						return true
					}
					out = append(out, RawFinding{Pos: lit.Pos(), Message: fmt.Sprintf("tolerance literal %s inside a comparison; promote it to a documented package-level constant stating its provenance", lit.Value)})
					return true
				})
			}
			return true
		})
	}
	return out
}

// isComparison reports whether op is one of the six ordering/equality
// operators.
func isComparison(op token.Token) bool {
	switch op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
		return true
	}
	return false
}
