package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Lockhold enforces the daemon-era critical-section contract (DESIGN.md
// §5j): a sync.Mutex/RWMutex critical section must not contain a blocking
// operation. A channel send/receive, a select without a default clause, a
// time.Sleep, file I/O (and above all an fsync), an HTTP round trip, or a
// supervised retry loop executed while a mutex is held serialises every
// contender behind that latency — the exact failure mode PR 7's shard
// merges must avoid, where the status API shares locks with the solve
// path. Two rules:
//
//  1. No blocking operation while a lock is held. The analysis is
//     per-function and syntactic over the statement list: Lock()/Unlock()
//     pairs are tracked through if/for/switch/select branches (a branch
//     that unlocks and returns does not leak its unlock into the
//     fall-through path), `defer mu.Unlock()` holds the lock to function
//     end, and goroutine or deferred closure bodies are analyzed as their
//     own functions — they do not run under the spawner's critical
//     section. (*sync.Cond).Wait is exempt: it releases its locker while
//     parked, which is the designed wait pattern. A select *with* a
//     default clause is exempt too: that is the non-blocking try-send /
//     try-receive idiom the admission path relies on.
//
//  2. The per-function lock acquisitions also feed a package-wide lock
//     acquisition-order graph (nodes are "Type.field" lock identities,
//     edges run from the lock already held to the one being acquired); a
//     cycle in that graph is a potential deadlock — two goroutines taking
//     the same pair of locks in opposite order — and is reported once per
//     cycle.
//
// Single-writer WAL appenders (internal/checkpoint.Journal), whose mutex
// exists precisely to serialise write+fsync on one descriptor, document
// the waiver with //pdnlint:ignore lockhold <reason> on the function.
var Lockhold = &Analyzer{
	Name: "lockhold",
	Doc:  "no blocking operation (channel ops, file I/O, fsync, HTTP, supervise.Do, sleeps) while a sync mutex is held; lock acquisition order must be acyclic",
	Run:  runLockhold,
}

// lockAcquire and lockRelease are the sync mutex entry points, by
// go/types.Func.FullName.
var lockAcquire = map[string]bool{
	"(*sync.Mutex).Lock":    true,
	"(*sync.RWMutex).Lock":  true,
	"(*sync.RWMutex).RLock": true,
}

var lockRelease = map[string]bool{
	"(*sync.Mutex).Unlock":    true,
	"(*sync.RWMutex).Unlock":  true,
	"(*sync.RWMutex).RUnlock": true,
}

// blockingCalls maps callee FullNames to a short description of why the
// call blocks. File operations are listed individually; every callee from
// net/http blocks by fiat (a round trip under a mutex is never right).
var blockingCalls = map[string]string{
	"time.Sleep":                             "time.Sleep",
	"(*sync.WaitGroup).Wait":                 "(*sync.WaitGroup).Wait",
	"(*sync.Mutex).Lock":                     "", // handled as acquisition, never reported
	"os.Create":                              "os.Create",
	"os.CreateTemp":                          "os.CreateTemp",
	"os.Open":                                "os.Open",
	"os.OpenFile":                            "os.OpenFile",
	"os.ReadFile":                            "os.ReadFile",
	"os.WriteFile":                           "os.WriteFile",
	"os.Rename":                              "os.Rename",
	"os.Remove":                              "os.Remove",
	"os.RemoveAll":                           "os.RemoveAll",
	"os.Mkdir":                               "os.Mkdir",
	"os.MkdirAll":                            "os.MkdirAll",
	"os.ReadDir":                             "os.ReadDir",
	"os.Stat":                                "os.Stat",
	"os.Lstat":                               "os.Lstat",
	"os.Truncate":                            "os.Truncate",
	"(*os.File).Read":                        "(*os.File).Read",
	"(*os.File).ReadAt":                      "(*os.File).ReadAt",
	"(*os.File).Write":                       "(*os.File).Write",
	"(*os.File).WriteAt":                     "(*os.File).WriteAt",
	"(*os.File).WriteString":                 "(*os.File).WriteString",
	"(*os.File).Seek":                        "(*os.File).Seek",
	"(*os.File).Sync":                        "(*os.File).Sync",
	"(*os.File).Close":                       "(*os.File).Close",
	"(*os.File).Truncate":                    "(*os.File).Truncate",
	"io.Copy":                                "io.Copy",
	"io.ReadAll":                             "io.ReadAll",
	"pdnsim/internal/supervise.Do":           "supervise.Do",
	"pdnsim/internal/checkpoint.Save":        "checkpoint.Save",
	"pdnsim/internal/checkpoint.Load":        "checkpoint.Load",
	"pdnsim/internal/checkpoint.OpenJournal": "checkpoint.OpenJournal",
	"pdnsim/internal/checkpoint.ReplayJournal":      "checkpoint.ReplayJournal",
	"(*pdnsim/internal/checkpoint.Journal).Append":  "Journal.Append (fsync)",
	"(*pdnsim/internal/checkpoint.Journal).Rewrite": "Journal.Rewrite (fsync)",
	"(*pdnsim/internal/checkpoint.Journal).Close":   "Journal.Close (fsync)",
	"pdnsim/internal/sparam.SaveSweepCheckpoint":    "sparam.SaveSweepCheckpoint (fsync)",
	"pdnsim/internal/sparam.LoadSweepCheckpoint":    "sparam.LoadSweepCheckpoint",
}

// blockingCallDesc reports whether fn is a known blocking callee.
func blockingCallDesc(fn *types.Func) (string, bool) {
	// Generic functions resolve through their origin so instantiations
	// match the FullName table.
	fn = fn.Origin()
	full := fn.FullName()
	if d, ok := blockingCalls[full]; ok && d != "" {
		return d, true
	}
	if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "net/http" {
		return "net/http." + fn.Name(), true
	}
	return "", false
}

// heldLock is one tracked acquisition: the syntactic receiver ("s.mu") for
// messages, the type-scoped identity ("Server.mu") for the order graph.
type heldLock struct {
	syn     string
	typeKey string
}

type lockholdPass struct {
	p     *Package
	graph map[string]map[string]token.Pos // held typeKey → acquired typeKey → first edge pos
	out   []RawFinding
}

func runLockhold(p *Package) []RawFinding {
	lp := &lockholdPass{p: p, graph: map[string]map[string]token.Pos{}}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				lp.walkFunc(fd.Body)
			}
		}
	}
	lp.reportCycles()
	return lp.out
}

// walkFunc analyzes one function body with no locks held on entry.
// Function literals encountered inside (goroutines, deferred closures,
// callbacks) are routed back here: they execute on another goroutine or at
// another time, not under the enclosing critical section.
func (lp *lockholdPass) walkFunc(body *ast.BlockStmt) {
	lp.walkStmts(body.List, map[string]heldLock{})
}

// walkStmts walks a statement list, returning true when the list
// terminates control flow (return / break / continue / goto), so branch
// merges know which arms fall through.
func (lp *lockholdPass) walkStmts(list []ast.Stmt, held map[string]heldLock) bool {
	for _, st := range list {
		if lp.walkStmt(st, held) {
			return true
		}
	}
	return false
}

// branchState is one control-flow arm's outcome for merging.
type branchState struct {
	held map[string]heldLock
	term bool
}

// mergeBranches keeps a lock held after a branch point only when every
// falling-through arm still holds it. Locks acquired inside a single arm
// are deliberately not propagated: conditional acquisition is tracked
// conservatively (a missed finding beats an invented one).
func mergeBranches(held map[string]heldLock, arms []branchState) {
	var live []map[string]heldLock
	for _, a := range arms {
		if !a.term {
			live = append(live, a.held)
		}
	}
	if len(live) == 0 {
		return // all arms terminate; anything after is unreachable
	}
	for k := range held {
		for _, m := range live {
			if _, ok := m[k]; !ok {
				delete(held, k)
				break
			}
		}
	}
}

func copyHeld(held map[string]heldLock) map[string]heldLock {
	cp := make(map[string]heldLock, len(held))
	for k, v := range held {
		cp[k] = v
	}
	return cp
}

func (lp *lockholdPass) walkStmt(st ast.Stmt, held map[string]heldLock) bool {
	switch s := st.(type) {
	case nil:
	case *ast.ExprStmt:
		lp.walkExpr(s.X, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			lp.walkExpr(e, held)
		}
		for _, e := range s.Lhs {
			lp.walkExpr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						lp.walkExpr(v, held)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		lp.walkExpr(s.X, held)
	case *ast.SendStmt:
		lp.walkExpr(s.Chan, held)
		lp.walkExpr(s.Value, held)
		lp.blocking(s.Arrow, "channel send", held)
	case *ast.GoStmt:
		// The spawned body runs concurrently, not under the caller's locks.
		for _, a := range s.Call.Args {
			lp.walkExpr(a, held)
		}
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			lp.walkFunc(fl.Body)
		}
	case *ast.DeferStmt:
		// `defer mu.Unlock()` keeps the lock held to the end of the
		// function (no state change). Deferred closures run at return,
		// outside the tracked critical sections.
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			lp.walkFunc(fl.Body)
		}
		for _, a := range s.Call.Args {
			lp.walkExpr(a, held)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			lp.walkExpr(e, held)
		}
		return true
	case *ast.BranchStmt:
		return true
	case *ast.BlockStmt:
		return lp.walkStmts(s.List, held)
	case *ast.IfStmt:
		lp.walkStmt(s.Init, held)
		lp.walkExpr(s.Cond, held)
		thenArm := branchState{held: copyHeld(held)}
		thenArm.term = lp.walkStmts(s.Body.List, thenArm.held)
		elseArm := branchState{held: copyHeld(held)}
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			elseArm.term = lp.walkStmts(e.List, elseArm.held)
		case *ast.IfStmt:
			elseArm.term = lp.walkStmt(e, elseArm.held)
		}
		mergeBranches(held, []branchState{thenArm, elseArm})
	case *ast.ForStmt:
		lp.walkStmt(s.Init, held)
		if s.Cond != nil {
			lp.walkExpr(s.Cond, held)
		}
		body := copyHeld(held)
		lp.walkStmts(s.Body.List, body)
		lp.walkStmt(s.Post, body)
	case *ast.RangeStmt:
		lp.walkExpr(s.X, held)
		body := copyHeld(held)
		lp.walkStmts(s.Body.List, body)
	case *ast.SwitchStmt:
		lp.walkStmt(s.Init, held)
		if s.Tag != nil {
			lp.walkExpr(s.Tag, held)
		}
		lp.walkCaseClauses(s.Body, held)
	case *ast.TypeSwitchStmt:
		lp.walkStmt(s.Init, held)
		lp.walkCaseClauses(s.Body, held)
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			lp.blocking(s.Pos(), "select without a default clause", held)
		}
		var arms []branchState
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			// The comm op itself is the select; a with-default select is
			// the non-blocking try pattern and a without-default one was
			// already reported, so the comm clauses are not re-flagged.
			arm := branchState{held: copyHeld(held)}
			arm.term = lp.walkStmts(cc.Body, arm.held)
			arms = append(arms, arm)
		}
		mergeBranches(held, arms)
	case *ast.LabeledStmt:
		return lp.walkStmt(s.Stmt, held)
	}
	return false
}

// walkCaseClauses merges switch / type-switch arms like if branches; a
// switch without a default has an implicit falling-through empty arm.
func (lp *lockholdPass) walkCaseClauses(body *ast.BlockStmt, held map[string]heldLock) {
	var arms []branchState
	hasDefault := false
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		for _, e := range cc.List {
			lp.walkExpr(e, held)
		}
		arm := branchState{held: copyHeld(held)}
		arm.term = lp.walkStmts(cc.Body, arm.held)
		arms = append(arms, arm)
	}
	if !hasDefault {
		arms = append(arms, branchState{held: copyHeld(held)})
	}
	mergeBranches(held, arms)
}

// walkExpr scans an expression for calls and channel receives under the
// current held set. Function literals are analyzed as fresh functions.
func (lp *lockholdPass) walkExpr(e ast.Expr, held map[string]heldLock) {
	switch x := e.(type) {
	case nil:
	case *ast.FuncLit:
		lp.walkFunc(x.Body)
	case *ast.CallExpr:
		for _, a := range x.Args {
			lp.walkExpr(a, held)
		}
		if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
			lp.walkExpr(sel.X, held)
		}
		lp.call(x, held)
	case *ast.UnaryExpr:
		lp.walkExpr(x.X, held)
		if x.Op == token.ARROW {
			lp.blocking(x.Pos(), "channel receive", held)
		}
	case *ast.BinaryExpr:
		lp.walkExpr(x.X, held)
		lp.walkExpr(x.Y, held)
	case *ast.ParenExpr:
		lp.walkExpr(x.X, held)
	case *ast.SelectorExpr:
		lp.walkExpr(x.X, held)
	case *ast.StarExpr:
		lp.walkExpr(x.X, held)
	case *ast.TypeAssertExpr:
		lp.walkExpr(x.X, held)
	case *ast.IndexExpr:
		lp.walkExpr(x.X, held)
		lp.walkExpr(x.Index, held)
	case *ast.IndexListExpr:
		lp.walkExpr(x.X, held)
		for _, i := range x.Indices {
			lp.walkExpr(i, held)
		}
	case *ast.SliceExpr:
		lp.walkExpr(x.X, held)
		lp.walkExpr(x.Low, held)
		lp.walkExpr(x.High, held)
		lp.walkExpr(x.Max, held)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			lp.walkExpr(el, held)
		}
	case *ast.KeyValueExpr:
		lp.walkExpr(x.Key, held)
		lp.walkExpr(x.Value, held)
	}
}

// call classifies one call: lock acquisition, lock release, exempt wait,
// or (under a held lock) a blocking operation.
func (lp *lockholdPass) call(call *ast.CallExpr, held map[string]heldLock) {
	fn := calleeFunc(lp.p.Info, call)
	if fn == nil {
		return
	}
	full := fn.Origin().FullName()
	sel, _ := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	switch {
	case lockAcquire[full]:
		if sel == nil {
			return
		}
		syn, typeKey := lp.lockKeys(sel)
		for _, k := range sortedHeldKeys(held) {
			lp.addEdge(held[k].typeKey, typeKey, call.Pos())
		}
		held[syn] = heldLock{syn: syn, typeKey: typeKey}
		return
	case lockRelease[full]:
		if sel == nil {
			return
		}
		syn, _ := lp.lockKeys(sel)
		delete(held, syn)
		return
	case full == "(*sync.Cond).Wait":
		// Cond.Wait atomically releases its locker while parked; waiting
		// under the cond's own mutex is the designed pattern.
		return
	}
	if len(held) == 0 {
		return
	}
	if desc, ok := blockingCallDesc(fn); ok {
		lp.blocking(call.Pos(), desc, held)
	}
}

// lockKeys derives the two identities of a lock from its Lock/Unlock
// selector: the syntactic receiver string, and "Type.field" when the
// receiver is a field of a named type (the graph identity).
func (lp *lockholdPass) lockKeys(sel *ast.SelectorExpr) (syn, typeKey string) {
	recv := ast.Unparen(sel.X)
	syn = types.ExprString(recv)
	typeKey = syn
	fieldSel, ok := recv.(*ast.SelectorExpr)
	if !ok {
		return syn, typeKey
	}
	tv, ok := lp.p.Info.Types[fieldSel.X]
	if !ok || tv.Type == nil {
		return syn, typeKey
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		typeKey = named.Obj().Name() + "." + fieldSel.Sel.Name
	}
	return syn, typeKey
}

func sortedHeldKeys(held map[string]heldLock) []string {
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// blocking reports a blocking operation when at least one lock is held.
func (lp *lockholdPass) blocking(pos token.Pos, what string, held map[string]heldLock) {
	if len(held) == 0 {
		return
	}
	names := sortedHeldKeys(held)
	lp.out = append(lp.out, RawFinding{Pos: pos, Message: fmt.Sprintf(
		"%s while %s is held; a blocking operation under a mutex stalls every contender — move it outside the critical section",
		what, strings.Join(names, ", "))})
}

func (lp *lockholdPass) addEdge(from, to string, pos token.Pos) {
	if from == to {
		return
	}
	m := lp.graph[from]
	if m == nil {
		m = map[string]token.Pos{}
		lp.graph[from] = m
	}
	if _, ok := m[to]; !ok {
		m[to] = pos
	}
}

// reportCycles runs a DFS over the acquisition-order graph and reports
// each distinct cycle once, anchored at the back edge that closes it.
func (lp *lockholdPass) reportCycles() {
	nodes := make([]string, 0, len(lp.graph))
	for n := range lp.graph {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	state := map[string]int{} // 0 unvisited, 1 on stack, 2 done
	var stack []string
	seen := map[string]bool{}
	var visit func(n string)
	visit = func(n string) {
		state[n] = 1
		stack = append(stack, n)
		tos := make([]string, 0, len(lp.graph[n]))
		for m := range lp.graph[n] {
			tos = append(tos, m)
		}
		sort.Strings(tos)
		for _, m := range tos {
			switch state[m] {
			case 0:
				visit(m)
			case 1:
				i := 0
				for j, s := range stack {
					if s == m {
						i = j
						break
					}
				}
				cyc := append(append([]string{}, stack[i:]...), m)
				key := strings.Join(cyc, "→")
				if !seen[key] {
					seen[key] = true
					lp.out = append(lp.out, RawFinding{Pos: lp.graph[n][m], Message: fmt.Sprintf(
						"lock acquisition order cycle: %s; two goroutines taking these locks in opposite orders deadlock — pick one order and document it",
						strings.Join(cyc, " -> "))})
				}
			}
		}
		stack = stack[:len(stack)-1]
		state[n] = 2
	}
	for _, n := range nodes {
		if state[n] == 0 {
			visit(n)
		}
	}
}
