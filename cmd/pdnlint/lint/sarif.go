package lint

import "path/filepath"

// SARIF 2.1.0 output: the static-analysis interchange format GitHub code
// scanning ingests. Only the subset of the schema the findings populate is
// modeled; the structs are exported so tests (and tooling) can round-trip
// a report through encoding/json.

// SARIFLog is the top-level report object.
type SARIFLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []SARIFRun `json:"runs"`
}

// SARIFRun is one tool invocation: the driver (with its rule table) plus
// the results it produced.
type SARIFRun struct {
	Tool    SARIFTool     `json:"tool"`
	Results []SARIFResult `json:"results"`
}

type SARIFTool struct {
	Driver SARIFDriver `json:"driver"`
}

type SARIFDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []SARIFRule `json:"rules"`
}

// SARIFRule describes one analyzer; result ruleIds refer back to these.
type SARIFRule struct {
	ID               string       `json:"id"`
	ShortDescription SARIFMessage `json:"shortDescription"`
}

type SARIFMessage struct {
	Text string `json:"text"`
}

// SARIFResult is one finding.
type SARIFResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   SARIFMessage    `json:"message"`
	Locations []SARIFLocation `json:"locations"`
}

type SARIFLocation struct {
	PhysicalLocation SARIFPhysicalLocation `json:"physicalLocation"`
}

type SARIFPhysicalLocation struct {
	ArtifactLocation SARIFArtifactLocation `json:"artifactLocation"`
	Region           SARIFRegion           `json:"region"`
}

type SARIFArtifactLocation struct {
	URI string `json:"uri"`
}

type SARIFRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// sarifSchemaURI pins the 2.1.0 schema the report claims conformance to.
const sarifSchemaURI = "https://json.schemastore.org/sarif-2.1.0.json"

// SARIFReport renders findings as a single-run SARIF 2.1.0 log. The rule
// table carries every analyzer in the roster (plus the engine's own
// "pdnlint" directive-hygiene rule) whether or not it fired, so code
// scanning can show the full contract set; Results is non-nil even when
// empty, as the schema requires an array.
func SARIFReport(findings []Finding, analyzers []*Analyzer) *SARIFLog {
	rules := make([]SARIFRule, 0, len(analyzers)+1)
	for _, a := range analyzers {
		rules = append(rules, SARIFRule{ID: a.Name, ShortDescription: SARIFMessage{Text: a.Doc}})
	}
	rules = append(rules, SARIFRule{ID: "pdnlint", ShortDescription: SARIFMessage{
		Text: "ignore-directive hygiene: every //pdnlint:ignore names a known analyzer and carries a reason"}})

	results := make([]SARIFResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, SARIFResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: SARIFMessage{Text: f.Message},
			Locations: []SARIFLocation{{PhysicalLocation: SARIFPhysicalLocation{
				ArtifactLocation: SARIFArtifactLocation{URI: filepath.ToSlash(f.File)},
				Region:           SARIFRegion{StartLine: f.Line, StartColumn: f.Col},
			}}},
		})
	}
	return &SARIFLog{
		Version: "2.1.0",
		Schema:  sarifSchemaURI,
		Runs: []SARIFRun{{
			Tool:    SARIFTool{Driver: SARIFDriver{Name: "pdnlint", Rules: rules}},
			Results: results,
		}},
	}
}
