package lint

import (
	"encoding/json"
	"testing"
)

// Each analyzer runs over its fixture package under testdata/src; the
// fixtures hold both flagged (want-annotated) and accepted cases, so these
// tests pin down false negatives and false positives at once.

func TestErrwrap(t *testing.T) {
	// The synthetic internal/ import path is what arms the analyzer.
	RunFixture(t, Errwrap, "errwrap", "pdnsim/internal/errwrapfix")
}

func TestErrwrapOutsideInternal(t *testing.T) {
	// The same source outside internal/ must produce no findings: cmd/,
	// examples/ and the facade are out of scope.
	l := sharedLoader(t)
	pkg, err := l.LoadDir("testdata/src/errwrap", "pdnsim/errwrapfix")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if fs := Run([]*Package{pkg}, []*Analyzer{Errwrap}, ""); len(fs) != 0 {
		t.Fatalf("errwrap must not fire outside internal/, got %v", fs)
	}
}

func TestCtxflow(t *testing.T) {
	RunFixture(t, Ctxflow, "ctxflow", "pdnsim/internal/ctxflowfix")
}

func TestFloateq(t *testing.T) {
	RunFixture(t, Floateq, "floateq", "pdnsim/internal/floateqfix")
}

func TestMagictol(t *testing.T) {
	RunFixture(t, Magictol, "magictol", "pdnsim/internal/magictolfix")
}

func TestParaloop(t *testing.T) {
	RunFixture(t, Paraloop, "paraloop", "pdnsim/internal/paraloopfix")
}

func TestIgnoreDirectives(t *testing.T) {
	// The ignore fixture runs under the full roster so suppression and
	// directive hygiene interact exactly as in the real driver.
	l := sharedLoader(t)
	pkg, err := l.LoadDir("testdata/src/ignore", "pdnsim/internal/ignorefix")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	findings := Run([]*Package{pkg}, Analyzers, "")
	// Reuse the want-matching by delegating to RunFixture for the single
	// magictol analyzer is not enough here (hygiene findings come from the
	// engine), so check the shape directly: exactly 2 suppressed sites stay
	// silent, 2 sites double-report.
	var magictol, hygiene int
	for _, f := range findings {
		switch f.Analyzer {
		case "magictol":
			magictol++
		case "pdnlint":
			hygiene++
		default:
			t.Errorf("unexpected analyzer in ignore fixture: %v", f)
		}
	}
	if magictol != 2 || hygiene != 2 {
		t.Fatalf("want 2 magictol + 2 hygiene findings, got %d + %d: %v", magictol, hygiene, findings)
	}
}

func TestWholeModuleIsClean(t *testing.T) {
	// The acceptance gate in executable form: pdnlint over the entire
	// repository reports zero findings. Every contract violation either got
	// fixed in the findings sweep or carries a documented ignore.
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	l := sharedLoader(t)
	pkgs, err := l.LoadModule()
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("module walk found only %d packages; loader is skipping code", len(pkgs))
	}
	for _, f := range Run(pkgs, Analyzers, l.ModuleRoot) {
		t.Errorf("finding: %s", f)
	}
}

// TestFindingJSONShape locks the -json output contract: findings marshal
// with stable lowercase keys so downstream tooling can track the count and
// location of findings across commits.
func TestFindingJSONShape(t *testing.T) {
	l := sharedLoader(t)
	pkg, err := l.LoadDir("testdata/src/floateq", "pdnsim/internal/floateqfix")
	if err != nil {
		t.Fatal(err)
	}
	findings := Run([]*Package{pkg}, []*Analyzer{Floateq}, "")
	if len(findings) == 0 {
		t.Fatal("floateq fixture must produce findings for the JSON shape test")
	}
	raw, err := json.Marshal(findings)
	if err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"file", "line", "col", "analyzer", "message"} {
		if _, ok := decoded[0][k]; !ok {
			t.Fatalf("finding JSON missing key %q: %s", k, raw)
		}
	}
	if decoded[0]["analyzer"] != "floateq" {
		t.Fatalf("analyzer key must carry the analyzer name, got %v", decoded[0]["analyzer"])
	}
}
