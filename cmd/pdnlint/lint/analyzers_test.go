package lint

import (
	"encoding/json"
	"strings"
	"testing"
)

// Each analyzer runs over its fixture package under testdata/src; the
// fixtures hold both flagged (want-annotated) and accepted cases, so these
// tests pin down false negatives and false positives at once.

func TestErrwrap(t *testing.T) {
	// The synthetic internal/ import path is what arms the analyzer.
	RunFixture(t, Errwrap, "errwrap", "pdnsim/internal/errwrapfix")
}

func TestErrwrapOutsideInternal(t *testing.T) {
	// The same source outside internal/ must produce no findings: cmd/,
	// examples/ and the facade are out of scope.
	l := sharedLoader(t)
	pkg, err := l.LoadDir("testdata/src/errwrap", "pdnsim/errwrapfix")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if fs := Run([]*Package{pkg}, []*Analyzer{Errwrap}, ""); len(fs) != 0 {
		t.Fatalf("errwrap must not fire outside internal/, got %v", fs)
	}
}

func TestCtxflow(t *testing.T) {
	RunFixture(t, Ctxflow, "ctxflow", "pdnsim/internal/ctxflowfix")
}

func TestFloateq(t *testing.T) {
	RunFixture(t, Floateq, "floateq", "pdnsim/internal/floateqfix")
}

func TestMagictol(t *testing.T) {
	RunFixture(t, Magictol, "magictol", "pdnsim/internal/magictolfix")
}

func TestParaloop(t *testing.T) {
	RunFixture(t, Paraloop, "paraloop", "pdnsim/internal/paraloopfix")
}

func TestLockhold(t *testing.T) {
	RunFixture(t, Lockhold, "lockhold", "pdnsim/internal/lockholdfix")
}

func TestLockholdIgnoreWithReason(t *testing.T) {
	// The doc-comment waiver covers the whole function (the single-writer
	// WAL shape); the undocumented twin still reports both sites.
	RunFixture(t, Lockhold, "ignorehold", "pdnsim/internal/ignoreholdfix")
}

func TestGoleak(t *testing.T) {
	// The synthetic internal/serve/... import path arms the strict
	// daemon-package accounting rule.
	RunFixture(t, Goleak, "goleak", "pdnsim/internal/serve/goleakfix")
}

func TestGoleakRelaxedOutsideDaemon(t *testing.T) {
	// The same source outside the daemon packages keeps only the
	// universal exit-path findings; the accounting findings disappear.
	l := sharedLoader(t)
	pkg, err := l.LoadDir("testdata/src/goleak", "pdnsim/internal/goleakfix")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	fs := Run([]*Package{pkg}, []*Analyzer{Goleak}, "")
	if len(fs) != 2 {
		t.Fatalf("want exactly the 2 exit-path findings outside daemon packages, got %v", fs)
	}
	for _, f := range fs {
		if !strings.Contains(f.Message, "no exit path") {
			t.Fatalf("accounting finding leaked outside daemon packages: %v", f)
		}
	}
}

func TestDurable(t *testing.T) {
	RunFixture(t, Durable, "durable", "pdnsim/internal/durablefix")
}

func TestDurableSeamRenames(t *testing.T) {
	RunFixture(t, Durable, "durablefs", "pdnsim/internal/durablefsfix")
}

func TestDurableExemptsCheckpointPackage(t *testing.T) {
	// The envelope implementation is the one place raw durable I/O
	// belongs; under its import path the same fixture is silent. A fresh
	// loader, not the shared one: the shared loader caches packages by
	// import path, and poisoning its cache with a fixture registered as
	// the real pdnsim/internal/checkpoint would break every later
	// whole-module load in this test binary.
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := l.LoadDir("testdata/src/durable", "pdnsim/internal/checkpoint")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if fs := Run([]*Package{pkg}, []*Analyzer{Durable}, ""); len(fs) != 0 {
		t.Fatalf("durable must not fire inside internal/checkpoint, got %v", fs)
	}
}

func TestHotalloc(t *testing.T) {
	RunFixture(t, Hotalloc, "hotalloc", "pdnsim/internal/hotallocfix")
}

func TestAnalyzerRosterHasNine(t *testing.T) {
	// The acceptance gate on the roster itself: nine analyzers with
	// distinct names, so every consumer deriving its set from
	// lint.Analyzers (CLI, Makefile lint, SARIF rules) sees all of them.
	if len(Analyzers) != 9 {
		t.Fatalf("lint.Analyzers has %d entries, want 9", len(Analyzers))
	}
	seen := map[string]bool{}
	for _, a := range Analyzers {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Fatalf("analyzer %+v incompletely registered", a)
		}
		if seen[a.Name] {
			t.Fatalf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	for _, name := range []string{"lockhold", "goleak", "durable", "hotalloc"} {
		if !seen[name] {
			t.Fatalf("roster is missing %q", name)
		}
	}
}

func TestIgnoreDirectives(t *testing.T) {
	// The ignore fixture runs under the full roster so suppression and
	// directive hygiene interact exactly as in the real driver.
	l := sharedLoader(t)
	pkg, err := l.LoadDir("testdata/src/ignore", "pdnsim/internal/ignorefix")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	findings := Run([]*Package{pkg}, Analyzers, "")
	// Reuse the want-matching by delegating to RunFixture for the single
	// magictol analyzer is not enough here (hygiene findings come from the
	// engine), so check the shape directly: exactly 2 suppressed sites stay
	// silent, 2 sites double-report.
	var magictol, hygiene int
	for _, f := range findings {
		switch f.Analyzer {
		case "magictol":
			magictol++
		case "pdnlint":
			hygiene++
		default:
			t.Errorf("unexpected analyzer in ignore fixture: %v", f)
		}
	}
	if magictol != 2 || hygiene != 2 {
		t.Fatalf("want 2 magictol + 2 hygiene findings, got %d + %d: %v", magictol, hygiene, findings)
	}
}

func TestWholeModuleIsClean(t *testing.T) {
	// The acceptance gate in executable form: pdnlint over the entire
	// repository reports zero findings. Every contract violation either got
	// fixed in the findings sweep or carries a documented ignore.
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	l := sharedLoader(t)
	pkgs, err := l.LoadModule()
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("module walk found only %d packages; loader is skipping code", len(pkgs))
	}
	for _, f := range Run(pkgs, Analyzers, l.ModuleRoot) {
		t.Errorf("finding: %s", f)
	}
}

// TestFindingJSONShape locks the -json output contract: findings marshal
// with stable lowercase keys so downstream tooling can track the count and
// location of findings across commits.
func TestFindingJSONShape(t *testing.T) {
	l := sharedLoader(t)
	pkg, err := l.LoadDir("testdata/src/floateq", "pdnsim/internal/floateqfix")
	if err != nil {
		t.Fatal(err)
	}
	findings := Run([]*Package{pkg}, []*Analyzer{Floateq}, "")
	if len(findings) == 0 {
		t.Fatal("floateq fixture must produce findings for the JSON shape test")
	}
	raw, err := json.Marshal(findings)
	if err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"file", "line", "col", "analyzer", "message"} {
		if _, ok := decoded[0][k]; !ok {
			t.Fatalf("finding JSON missing key %q: %s", k, raw)
		}
	}
	if decoded[0]["analyzer"] != "floateq" {
		t.Fatalf("analyzer key must carry the analyzer name, got %v", decoded[0]["analyzer"])
	}
}

// TestSARIFRoundTrip locks the -sarif output contract: a SARIF 2.1.0 log
// whose encoding survives json.Unmarshal with version, schema, the full
// rule table, and per-finding rule/location intact.
func TestSARIFRoundTrip(t *testing.T) {
	l := sharedLoader(t)
	pkg, err := l.LoadDir("testdata/src/floateq", "pdnsim/internal/floateqfix")
	if err != nil {
		t.Fatal(err)
	}
	findings := Run([]*Package{pkg}, []*Analyzer{Floateq}, "")
	if len(findings) == 0 {
		t.Fatal("floateq fixture must produce findings for the SARIF test")
	}
	raw, err := json.Marshal(SARIFReport(findings, Analyzers))
	if err != nil {
		t.Fatal(err)
	}

	var log SARIFLog
	if err := json.Unmarshal(raw, &log); err != nil {
		t.Fatalf("SARIF does not round-trip: %v", err)
	}
	if log.Version != "2.1.0" {
		t.Fatalf("version = %q, want 2.1.0", log.Version)
	}
	if !strings.Contains(log.Schema, "sarif-2.1.0") {
		t.Fatalf("schema = %q, want a sarif-2.1.0 schema URI", log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("want exactly one run, got %d", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "pdnlint" {
		t.Fatalf("driver name = %q", run.Tool.Driver.Name)
	}
	if want := len(Analyzers) + 1; len(run.Tool.Driver.Rules) != want {
		t.Fatalf("rule table has %d entries, want %d (roster + hygiene)", len(run.Tool.Driver.Rules), want)
	}
	if len(run.Results) != len(findings) {
		t.Fatalf("results = %d, findings = %d", len(run.Results), len(findings))
	}
	ruleIDs := map[string]bool{}
	for _, r := range run.Tool.Driver.Rules {
		ruleIDs[r.ID] = true
	}
	for i, r := range run.Results {
		if !ruleIDs[r.RuleID] {
			t.Fatalf("result %d ruleId %q missing from the rule table", i, r.RuleID)
		}
		if r.Level != "error" || r.Message.Text == "" {
			t.Fatalf("result %d incomplete: %+v", i, r)
		}
		loc := r.Locations[0].PhysicalLocation
		if loc.ArtifactLocation.URI == "" || loc.Region.StartLine <= 0 {
			t.Fatalf("result %d location incomplete: %+v", i, loc)
		}
		if strings.Contains(loc.ArtifactLocation.URI, "\\") {
			t.Fatalf("artifact URI must be slash-separated, got %q", loc.ArtifactLocation.URI)
		}
	}

	// Empty findings still produce a valid array-carrying run.
	raw, err = json.Marshal(SARIFReport(nil, Analyzers))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), `"results":null`) {
		t.Fatalf("empty report must carry an empty results array, got %s", raw)
	}
}
