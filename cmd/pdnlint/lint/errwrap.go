package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
)

// internalPrefix scopes errwrap to the solver packages. The taxonomy package
// itself is exempt (it *defines* the sentinels with errors.New), as are
// cmd/, examples/ and the repo root facade, which sit above the boundary the
// contract protects: errors.Is must resolve simerr classes across every
// internal package boundary.
const internalPrefix = "pdnsim/internal/"

// errwrapExempt lists internal packages allowed to build untyped errors.
var errwrapExempt = map[string]bool{
	"pdnsim/internal/simerr": true,
}

// wrapVerb matches a %w (or indexed %[1]w) wrapping verb in a format string.
var wrapVerb = regexp.MustCompile(`%(\[[0-9]+\])?w`)

// Errwrap enforces the typed-error contract of internal/simerr: an error
// built inside internal/... must either be a simerr type (constructors and
// struct literals pass — they carry class identity) or wrap an existing
// error with %w so the class identity of the cause survives. Bare
// errors.New and fmt.Errorf-without-%w produce errors for which
// errors.Is(err, simerr.ErrX) silently reports false in every other
// package, which is exactly the erosion this analyzer stops. Package-level
// variable initializers are exempt: that is where sentinels live.
var Errwrap = &Analyzer{
	Name: "errwrap",
	Doc:  "errors returned from internal/ must carry simerr class identity (simerr type or %w wrap)",
	Run:  runErrwrap,
}

func runErrwrap(p *Package) []RawFinding {
	if !strings.HasPrefix(p.Path, internalPrefix) || errwrapExempt[p.Path] {
		return nil
	}
	var out []RawFinding
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue // package-level var/const initializers are sentinel territory
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(p.Info, call)
				if fn == nil {
					return true
				}
				switch fn.FullName() {
				case "errors.New":
					out = append(out, RawFinding{Pos: call.Pos(), Message: "errors.New loses simerr class identity across packages; use simerr.Tagf/simerr.BadInput or wrap a sentinel with %w"})
				case "fmt.Errorf":
					if len(call.Args) == 0 {
						return true
					}
					lit, ok := call.Args[0].(*ast.BasicLit)
					if !ok || lit.Kind != token.STRING {
						out = append(out, RawFinding{Pos: call.Pos(), Message: "fmt.Errorf with a non-constant format; cannot verify %w wrapping — build the error with simerr instead"})
						return true
					}
					format, err := strconv.Unquote(lit.Value)
					if err != nil || !wrapVerb.MatchString(format) {
						out = append(out, RawFinding{Pos: call.Pos(), Message: "fmt.Errorf without %w loses simerr class identity across packages; wrap a sentinel/cause with %w or use simerr.Tagf"})
					}
				}
				return true
			})
		}
	}
	return out
}
