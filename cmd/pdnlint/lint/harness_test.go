package lint

import (
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// Fixture testing: each analyzer has a package under testdata/src/<name>
// whose files annotate expected findings with trailing comments of the form
//
//	code // want "regexp" ["regexp" ...]
//
// RunFixture loads the fixture with the full loader (so type information
// and ignore directives behave exactly as in production), runs the one
// analyzer, and cross-checks findings against annotations both ways:
// an unannotated finding and an unmatched annotation are both failures.

var (
	testLoaderOnce sync.Once
	testLoader     *Loader
	testLoaderErr  error
)

// sharedLoader caches one Loader across fixture tests so the standard
// library is type-checked once per test binary, not once per fixture.
func sharedLoader(t *testing.T) *Loader {
	t.Helper()
	testLoaderOnce.Do(func() {
		testLoader, testLoaderErr = NewLoader(".")
	})
	if testLoaderErr != nil {
		t.Fatalf("loader: %v", testLoaderErr)
	}
	return testLoader
}

// wantRe extracts the quoted expectation patterns from a want comment.
var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// RunFixture runs one analyzer over testdata/src/<fixture>, type-checked
// under importPath (which lets errwrap fixtures live under a synthetic
// pdnsim/internal/... path), and verifies the findings against the
// fixture's want annotations.
func RunFixture(t *testing.T, a *Analyzer, fixture, importPath string) {
	t.Helper()
	l := sharedLoader(t)
	pkg, err := l.LoadDir("testdata/src/"+fixture, importPath)
	if err != nil {
		t.Fatalf("load fixture %s: %v", fixture, err)
	}
	findings := Run([]*Package{pkg}, []*Analyzer{a}, "")

	type key struct {
		file string
		line int
	}
	want := make(map[key][]*regexp.Regexp)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range splitQuoted(t, m[1]) {
					re, err := regexp.Compile(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, q, err)
					}
					want[key{pos.Filename, pos.Line}] = append(want[key{pos.Filename, pos.Line}], re)
				}
			}
		}
	}
	for _, f := range findings {
		k := key{f.File, f.Line}
		res := want[k]
		matched := -1
		for i, re := range res {
			if re.MatchString(f.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected finding %s", f)
			continue
		}
		want[k] = append(res[:matched], res[matched+1:]...)
	}
	for k, res := range want {
		for _, re := range res {
			t.Errorf("%s:%d: expected finding matching %q did not fire", k.file, k.line, re)
		}
	}
}

// splitQuoted parses a sequence of Go-quoted strings: `"a" "b"` → [a b].
func splitQuoted(t *testing.T, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' && s[0] != '`' {
			t.Fatalf("want annotation must be a sequence of quoted patterns, got %q", s)
		}
		prefix, err := strconv.QuotedPrefix(s)
		if err != nil {
			t.Fatalf("bad quoted pattern in %q: %v", s, err)
		}
		q, err := strconv.Unquote(prefix)
		if err != nil {
			t.Fatalf("bad quoted pattern %q: %v", prefix, err)
		}
		out = append(out, q)
		s = strings.TrimSpace(s[len(prefix):])
	}
	return out
}
