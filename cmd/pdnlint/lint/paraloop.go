package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// Paraloop is a cheap static complement to the race detector for the
// project's parallel fill patterns (BEM assembly, S-parameter sweeps,
// mat.ParallelFor): the race detector only sees schedules that actually
// executed, while this check flags the shape of the bug at the source.
// Inside a `go func` body it flags:
//
//   - writes through an index captured from the enclosing scope
//     (s[i] = ... where both s and i outlive the goroutine) — the
//     partitioning that makes parallel fills safe requires the index to be
//     goroutine-local (a parameter or a variable declared in the body);
//   - writes to a captured map without a Lock() call in the body —
//     concurrent map writes crash the runtime outright;
//   - plain assignments to captured variables without a Lock() call in the
//     body.
//
// It is deliberately heuristic: a Lock() anywhere in the body is taken as
// evidence of a guarded critical section. The escape hatch
// (//pdnlint:ignore paraloop <reason>) covers the patterns it cannot see.
var Paraloop = &Analyzer{
	Name: "paraloop",
	Doc:  "goroutine bodies must index-partition or mutex-guard writes to shared slices and maps",
	Run:  runParaloop,
}

func runParaloop(p *Package) []RawFinding {
	var out []RawFinding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			fl, ok := gs.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			out = append(out, checkGoBody(p, fl)...)
			return true
		})
	}
	return out
}

// checkGoBody inspects one goroutine function literal.
func checkGoBody(p *Package, fl *ast.FuncLit) []RawFinding {
	var out []RawFinding
	// local reports whether the identifier's object is declared within the
	// literal (parameters included): such objects are goroutine-private.
	local := func(id *ast.Ident) bool {
		obj := p.Info.Uses[id]
		if obj == nil {
			obj = p.Info.Defs[id]
		}
		if obj == nil {
			return true // unresolved: assume local rather than speculate
		}
		return obj.Pos() >= fl.Pos() && obj.Pos() <= fl.Body.End()
	}
	hasLock := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && (sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock") {
				hasLock = true
			}
		}
		return true
	})
	check := func(lhs ast.Expr) {
		switch t := ast.Unparen(lhs).(type) {
		case *ast.IndexExpr:
			baseIdent, _ := ast.Unparen(t.X).(*ast.Ident)
			captured := baseIdent == nil || !local(baseIdent)
			if !captured {
				return // goroutine-local container
			}
			name := "container"
			if baseIdent != nil {
				name = baseIdent.Name
			}
			if _, isMap := p.Info.Types[t.X].Type.Underlying().(*types.Map); isMap {
				if !hasLock {
					out = append(out, RawFinding{Pos: t.Pos(), Message: fmt.Sprintf("concurrent write to captured map %s in a goroutine without a Lock(); concurrent map writes fault at runtime", name)})
				}
				return
			}
			if hasLock {
				return
			}
			if idx, ok := ast.Unparen(t.Index).(*ast.Ident); ok && local(idx) {
				return // index-partitioned: goroutine-local index
			}
			out = append(out, RawFinding{Pos: t.Pos(), Message: fmt.Sprintf("goroutine writes %s[...] through a captured index; partition with a goroutine-local index or guard with a mutex", name)})
		case *ast.Ident:
			if t.Name == "_" || local(t) || hasLock {
				return
			}
			out = append(out, RawFinding{Pos: t.Pos(), Message: fmt.Sprintf("goroutine assigns to captured variable %s without synchronization; every sibling goroutine races on it", t.Name)})
		}
	}
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			if s != fl {
				return false // nested literals are checked when launched via their own go stmt
			}
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				check(lhs)
			}
		case *ast.IncDecStmt:
			check(s.X)
		}
		return true
	})
	return out
}
