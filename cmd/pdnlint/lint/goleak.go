package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Goleak enforces the goroutine-lifecycle contract (DESIGN.md §5j): every
// `go` statement needs a provable exit path, and daemon packages must
// account for their goroutines. Two rules:
//
//  1. Exit path (every package): when the spawned body is visible — a
//     function literal, or a same-package function declaration — each
//     unbounded `for {}` loop in it must contain a return or a break (a
//     select case on ctx.Done()/a done channel that returns qualifies, as
//     that is how daemon workers exit). A bounded or range loop is an exit
//     path by construction. A body that cannot be resolved (a
//     function-typed variable, a cross-package callee) is not guessed at.
//
//  2. Accounting (strict daemon packages: internal/serve and
//     cmd/pdnserve): a goroutine must be observable by its spawner —
//     registered via (*sync.WaitGroup).Add positionally before the go
//     statement in the same function, or signalling completion by closing
//     or sending on a channel in its body. A fire-and-forget goroutine in
//     the daemon is how drains hang and tests leak; the chaos suite's
//     goroutine-count checks sample this at runtime, goleak proves it at
//     the spawn site.
var Goleak = &Analyzer{
	Name: "goleak",
	Doc:  "every go statement needs a provable exit path; daemon-package goroutines must be WaitGroup-accounted or signal completion on a channel",
	Run:  runGoleak,
}

// strictGoleakPkg reports whether the import path is held to the
// accounting rule (the daemon and its packages).
func strictGoleakPkg(path string) bool {
	return path == "pdnsim/cmd/pdnserve" ||
		path == "pdnsim/internal/serve" ||
		strings.HasPrefix(path, "pdnsim/internal/serve/")
}

func runGoleak(p *Package) []RawFinding {
	var out []RawFinding
	strict := strictGoleakPkg(p.Path)

	// Same-package function declarations by object, so `go fn(...)` and
	// `go s.method(...)` resolve to an inspectable body.
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
					decls[obj] = fd
				}
			}
		}
	}

	reported := map[token.Pos]bool{} // two go stmts on one decl report its loop once
	for _, f := range p.Files {
		// Each go statement is checked against its enclosing function: the
		// innermost FuncDecl/FuncLit whose span contains it.
		var funcs []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.FuncDecl, *ast.FuncLit:
				funcs = append(funcs, n)
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := goBody(p.Info, decls, gs)
			if body != nil {
				for _, loop := range endlessLoops(body) {
					if !reported[loop.Pos()] {
						reported[loop.Pos()] = true
						out = append(out, RawFinding{Pos: loop.Pos(), Message: "goroutine loops forever with no exit path; add a select case on ctx.Done() (or a done channel) that returns, or bound the loop"})
					}
				}
			}
			if strict && !accounted(p.Info, gs, body, enclosingFunc(funcs, gs)) {
				out = append(out, RawFinding{Pos: gs.Pos(), Message: "unaccounted goroutine in a daemon package: register it with wg.Add before launch or signal completion on a channel the spawner can wait on"})
			}
			return true
		})
	}
	return out
}

// goBody resolves the statement body a go statement will run: an inline
// function literal, or a same-package declared function/method.
func goBody(info *types.Info, decls map[*types.Func]*ast.FuncDecl, gs *ast.GoStmt) *ast.BlockStmt {
	if fl, ok := gs.Call.Fun.(*ast.FuncLit); ok {
		return fl.Body
	}
	if fn := calleeFunc(info, gs.Call); fn != nil {
		if fd := decls[fn.Origin()]; fd != nil {
			return fd.Body
		}
	}
	return nil
}

// endlessLoops returns the unbounded `for {}` loops in body (not crossing
// nested function literals) whose own subtree has no return or break.
func endlessLoops(body *ast.BlockStmt) []*ast.ForStmt {
	var loops []*ast.ForStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		fs, ok := n.(*ast.ForStmt)
		if !ok || fs.Cond != nil {
			return true
		}
		escapes := false
		ast.Inspect(fs.Body, func(m ast.Node) bool {
			switch b := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ReturnStmt:
				escapes = true
			case *ast.BranchStmt:
				if b.Tok == token.BREAK || b.Tok == token.GOTO {
					escapes = true
				}
			}
			return !escapes
		})
		if !escapes {
			loops = append(loops, fs)
			return false // the outer finding covers nested loops
		}
		return true
	})
	return loops
}

// enclosingFunc returns the innermost function node containing pos.
func enclosingFunc(funcs []ast.Node, gs *ast.GoStmt) ast.Node {
	var best ast.Node
	for _, fn := range funcs {
		if fn.Pos() <= gs.Pos() && gs.End() <= fn.End() {
			if best == nil || fn.Pos() >= best.Pos() {
				best = fn
			}
		}
	}
	return best
}

// accounted implements the strict-package rule: wg.Add positionally before
// the go statement in the same function, or a close/send in the body.
func accounted(info *types.Info, gs *ast.GoStmt, body *ast.BlockStmt, encl ast.Node) bool {
	if encl != nil {
		found := false
		ast.Inspect(encl, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || call.Pos() >= gs.Pos() {
				return !found
			}
			if fn := calleeFunc(info, call); fn != nil && fn.FullName() == "(*sync.WaitGroup).Add" {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	if body == nil {
		return false
	}
	signals := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SendStmt:
			signals = true
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					signals = true
				}
			}
		}
		return !signals
	})
	return signals
}
