// Package ignorefix exercises the //pdnlint:ignore escape hatch and its
// hygiene rules: a documented ignore suppresses exactly its analyzer on its
// line (or whole function, from a doc comment); an undocumented or
// misspelled ignore is itself a finding and suppresses nothing.
package ignorefix

import "math"

// tinyFloor documents the accepted pattern for completeness.
const tinyFloor = 1e-300

// Accepted: same-line documented ignore.
func sameLine(v float64) bool {
	return v < 1e-9 //pdnlint:ignore magictol fixture demonstrates a documented same-line waiver
}

// Accepted: the directive on the line above covers the next line.
func lineAbove(v float64) bool {
	//pdnlint:ignore magictol fixture demonstrates a documented previous-line waiver
	return v < 1e-9
}

// Accepted: a directive in the doc comment covers the whole function.
//
//pdnlint:ignore magictol fixture demonstrates a function-scoped waiver
func wholeFunc(v, w float64) bool {
	a := v < 1e-9
	b := w > 1e-12
	return a && b
}

// Flagged twice: the ignore names the wrong analyzer, so the magictol
// finding still fires and the directive itself is reported as unknown.
func wrongAnalyzer(v float64) bool {
	return math.Abs(v) < 1e-9 //pdnlint:ignore floatqe typo in analyzer name // want "tolerance literal 1e-9" "ignore directive names unknown analyzer"
}

// Flagged twice: an undocumented ignore suppresses nothing.
func noReason(v float64) bool {
	return v < 1e-9 //pdnlint:ignore magictol // want "tolerance literal 1e-9" "undocumented ignore"
}
