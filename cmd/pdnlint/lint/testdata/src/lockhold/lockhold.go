// Package lockholdfix exercises the lockhold analyzer: blocking
// operations inside sync.Mutex critical sections are flagged, the
// designed non-blocking and hand-off patterns are accepted, and opposite
// lock acquisition orders surface as a cycle.
package lockholdfix

import (
	"os"
	"sync"
	"time"
)

type server struct {
	mu    sync.Mutex
	state int
	ch    chan int
}

// Flagged: file I/O while the deferred unlock keeps mu held to return.
func (s *server) badWrite(path string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return os.WriteFile(path, data, 0o644) // want "os.WriteFile while s.mu is held"
}

// Flagged: fsync under the lock — the shard-merge defect shape.
func (s *server) badSync(f *os.File) error {
	s.mu.Lock()
	err := f.Sync() // want `os.File..Sync while s.mu is held`
	s.mu.Unlock()
	return err
}

// Flagged: blocking channel operations under the lock.
func (s *server) badSend(v int) {
	s.mu.Lock()
	s.ch <- v // want "channel send while s.mu is held"
	s.mu.Unlock()
}

func (s *server) badRecv() int {
	s.mu.Lock()
	v := <-s.ch // want "channel receive while s.mu is held"
	s.mu.Unlock()
	return v
}

func (s *server) badSelect(done chan struct{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want "select without a default clause while s.mu is held"
	case <-done:
	case v := <-s.ch:
		s.state = v
	}
}

func (s *server) badSleep() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep while s.mu is held"
	s.mu.Unlock()
}

// Accepted: a select with a default clause is the non-blocking try-send.
func (s *server) goodTrySend(v int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- v:
		return true
	default:
		return false
	}
}

// Accepted: unlock before the I/O.
func (s *server) goodWrite(path string, data []byte) error {
	s.mu.Lock()
	s.state++
	s.mu.Unlock()
	return os.WriteFile(path, data, 0o644)
}

// Accepted: an early-return branch that unlocks does not leak a held lock
// into the code after the if, and the main path unlocks before writing.
func (s *server) goodBranch(path string, data []byte, skip bool) error {
	s.mu.Lock()
	if skip {
		s.mu.Unlock()
		return nil
	}
	s.state++
	s.mu.Unlock()
	return os.WriteFile(path, data, 0o644)
}

// Flagged: only one branch unlocks, so the fall-through still holds mu.
func (s *server) badBranch(path string, data []byte, flush bool) error {
	s.mu.Lock()
	if flush {
		s.state = 0
	} else {
		s.state++
	}
	return os.WriteFile(path, data, 0o644) // want "os.WriteFile while s.mu is held"
}

// Accepted: Cond.Wait releases its locker while parked.
type pool struct {
	mu   sync.Mutex
	cond *sync.Cond
	n    int
}

func (p *pool) take() {
	p.mu.Lock()
	for p.n == 0 {
		p.cond.Wait()
	}
	p.n--
	p.mu.Unlock()
}

// Accepted: a goroutine body does not run under the spawner's lock.
func (s *server) goodAsync(path string, data []byte, wg *sync.WaitGroup) {
	s.mu.Lock()
	defer s.mu.Unlock()
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = os.WriteFile(path, data, 0o644)
	}()
}

// Opposite acquisition orders: ab takes a then b, ba takes b then a — the
// classic two-goroutine deadlock, reported once at the edge that closes
// the cycle.
type ordered struct {
	a sync.Mutex
	b sync.Mutex
}

func (l *ordered) ab() {
	l.a.Lock()
	l.b.Lock()
	l.b.Unlock()
	l.a.Unlock()
}

func (l *ordered) ba() {
	l.b.Lock()
	l.a.Lock() // want "lock acquisition order cycle"
	l.a.Unlock()
	l.b.Unlock()
}
