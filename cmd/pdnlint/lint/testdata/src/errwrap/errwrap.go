// Package errwrapfix exercises the errwrap analyzer: errors built inside
// internal/ must carry simerr class identity. The fixture is type-checked
// under a synthetic pdnsim/internal/ import path so the analyzer engages.
package errwrapfix

import (
	"errors"
	"fmt"

	"pdnsim/internal/simerr"
)

// Package-level sentinels are the one legitimate home for errors.New.
var ErrSentinel = errors.New("errwrapfix: sentinel")

// Flagged: untyped constructors inside function bodies.
func bad(n int) error {
	if n < 0 {
		return errors.New("negative") // want "errors.New loses simerr class identity"
	}
	if n == 0 {
		return fmt.Errorf("zero count %d", n) // want `fmt.Errorf without %w`
	}
	return nil
}

// Flagged: a non-constant format cannot be verified.
func badDynamic(format string) error {
	return fmt.Errorf(format) // want "non-constant format"
}

// Accepted: simerr constructors, %w wrapping (sentinel or cause), plain
// propagation, and Tagf-style message-stable tagging.
func good(n int) error {
	if n < 0 {
		return simerr.BadInput("errwrapfix", "negative %d", n)
	}
	if n == 0 {
		return simerr.Tagf(simerr.ErrBadInput, "zero count %d", n)
	}
	if n == 1 {
		return fmt.Errorf("errwrapfix: count %d: %w", n, simerr.ErrBadInput)
	}
	if n == 2 {
		return &simerr.SingularError{Op: "errwrapfix", Row: n}
	}
	if err := bad(n); err != nil {
		return fmt.Errorf("errwrapfix: inner: %w", err)
	}
	return nil
}
