// Package magictolfix exercises the magictol analyzer: tolerance-scale
// float literals (|v| < 1e-3) may not appear inline in comparisons.
package magictolfix

import "math"

// residualTol is the documented home for a tolerance: a named
// package-level constant whose provenance can be audited. (Fixture value.)
const residualTol = 1e-9

// Flagged: inline tolerance in a comparison.
func bad(v float64) bool {
	return v < 1e-9 // want "tolerance literal 1e-9 inside a comparison"
}

// Flagged: the tolerance hides inside a product on one side.
func badScaled(v, scale float64) bool {
	return v <= 1e-12*scale // want "tolerance literal 1e-12 inside a comparison"
}

// Flagged: underflow guards are tolerances too.
func badTiny(v float64) bool {
	return math.Abs(v) > 1e-300 // want "tolerance literal 1e-300 inside a comparison"
}

// Flagged: both terms of a mixed absolute/relative band.
func badBand(dv, v float64) bool {
	return dv <= 1e-6+1e-4*math.Abs(v) // want "tolerance literal 1e-6 inside a comparison" "tolerance literal 1e-4 inside a comparison"
}

// Accepted: named constant.
func good(v float64) bool {
	return v < residualTol
}

// Accepted: physical-scale literals (frequency sweep bound) are not
// tolerances.
func goodScale(f float64) bool {
	return f <= 5.5e9
}

// Accepted: zero is floateq's business, not a tolerance.
func goodZero(v float64) bool {
	return v > 0.0
}

// Accepted: literals outside comparisons (initialisers, arithmetic) are
// not trust thresholds.
func goodInit(v float64) float64 {
	tol := 1e-9
	return v * tol
}

// Accepted: compile-time constant comparisons are static facts.
const fits = 1e-9 < 1e-3
