// Package ctxflowfix exercises the ctxflow analyzer: no
// context.Background outside package main, exported ctx-taking functions
// with loops must check the ctx inside a loop, and bare time.Sleep is
// flagged in favour of ctx-aware waiting.
package ctxflowfix

import (
	"context"
	"time"

	"pdnsim/internal/simerr"
)

// Flagged: Background outside package main.
func pinned() context.Context {
	return context.Background() // want "outside package main pins an uncancellable context"
}

// Flagged: TODO is no better.
func todo() context.Context {
	return context.TODO() // want "outside package main pins an uncancellable context"
}

// Accepted: a documented compatibility shim uses the escape hatch.
func Shim() error {
	return LongRun(context.Background(), 10) //pdnlint:ignore ctxflow documented non-Ctx compatibility shim for fixture
}

// Flagged: ctx accepted but checked only before the loop, so the sweep is
// uncancellable once started.
func SweepBad(ctx context.Context, n int) error { // want "SweepBad loops without checking ctx inside the loop"
	if err := simerr.CheckCtx(ctx, "fixture"); err != nil {
		return err
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += float64(i)
	}
	_ = sum
	return nil
}

// Flagged: ctx accepted and dropped entirely.
func Dropped(ctx context.Context, n int) int { // want "accepts a context.Context but never uses it"
	return n + 1
}

// Accepted: the loop body checks cancellation every iteration.
func LongRun(ctx context.Context, n int) error {
	for i := 0; i < n; i++ {
		if err := simerr.CheckCtx(ctx, "fixture: long run"); err != nil {
			return err
		}
	}
	return nil
}

// Accepted: passing ctx to the worker inside the range loop counts — the
// callee owns the cancellation check.
func Delegates(ctx context.Context, xs []int) error {
	for range xs {
		if err := LongRun(ctx, 4); err != nil {
			return err
		}
	}
	return nil
}

// Accepted: unexported functions are the callee side of the contract; the
// exported entry points carry the obligation.
func quietLoop(ctx context.Context, n int) {
	for i := 0; i < n; i++ {
	}
}

// Accepted: no loops — a straight-line ctx pass-through.
func PassThrough(ctx context.Context) error {
	return simerr.CheckCtx(ctx, "fixture: pass through")
}

// Flagged: a bare sleep cannot observe cancellation — the retry waits out
// its full delay even after the job is cancelled.
func SleepyPoll(ctx context.Context, n int) error {
	for i := 0; i < n; i++ {
		if err := simerr.CheckCtx(ctx, "fixture: poll"); err != nil {
			return err
		}
		time.Sleep(time.Millisecond) // want "time.Sleep cannot observe cancellation"
	}
	return nil
}

// Accepted: timer + select is the supervise backoff pattern — the wait
// ends at the timer or the cancellation, whichever comes first.
func PatientPoll(ctx context.Context, n int) error {
	for i := 0; i < n; i++ {
		t := time.NewTimer(time.Millisecond)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
	}
	return nil
}
