// Package ctxflowfix exercises the ctxflow analyzer: no
// context.Background outside package main, and exported ctx-taking
// functions with loops must check the ctx inside a loop.
package ctxflowfix

import (
	"context"

	"pdnsim/internal/simerr"
)

// Flagged: Background outside package main.
func pinned() context.Context {
	return context.Background() // want "outside package main pins an uncancellable context"
}

// Flagged: TODO is no better.
func todo() context.Context {
	return context.TODO() // want "outside package main pins an uncancellable context"
}

// Accepted: a documented compatibility shim uses the escape hatch.
func Shim() error {
	return LongRun(context.Background(), 10) //pdnlint:ignore ctxflow documented non-Ctx compatibility shim for fixture
}

// Flagged: ctx accepted but checked only before the loop, so the sweep is
// uncancellable once started.
func SweepBad(ctx context.Context, n int) error { // want "SweepBad loops without checking ctx inside the loop"
	if err := simerr.CheckCtx(ctx, "fixture"); err != nil {
		return err
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += float64(i)
	}
	_ = sum
	return nil
}

// Flagged: ctx accepted and dropped entirely.
func Dropped(ctx context.Context, n int) int { // want "accepts a context.Context but never uses it"
	return n + 1
}

// Accepted: the loop body checks cancellation every iteration.
func LongRun(ctx context.Context, n int) error {
	for i := 0; i < n; i++ {
		if err := simerr.CheckCtx(ctx, "fixture: long run"); err != nil {
			return err
		}
	}
	return nil
}

// Accepted: passing ctx to the worker inside the range loop counts — the
// callee owns the cancellation check.
func Delegates(ctx context.Context, xs []int) error {
	for range xs {
		if err := LongRun(ctx, 4); err != nil {
			return err
		}
	}
	return nil
}

// Accepted: unexported functions are the callee side of the contract; the
// exported entry points carry the obligation.
func quietLoop(ctx context.Context, n int) {
	for i := 0; i < n; i++ {
	}
}

// Accepted: no loops — a straight-line ctx pass-through.
func PassThrough(ctx context.Context) error {
	return simerr.CheckCtx(ctx, "fixture: pass through")
}
