// Package paraloopfix exercises the paraloop analyzer: goroutine bodies
// must index-partition or mutex-guard writes to shared containers.
package paraloopfix

import "sync"

// Flagged: every goroutine writes through the same captured index — the
// classic non-partitioned parallel fill.
func badCapturedIndex(out []float64, n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i] = float64(i * i) // want `goroutine writes out\[\.\.\.\] through a captured index`
		}()
	}
	wg.Wait()
}

// Flagged: concurrent map write without a lock faults at runtime.
func badMap(m map[int]float64, n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			m[k] = float64(k) // want "concurrent write to captured map m"
		}(i)
	}
	wg.Wait()
}

// Flagged: captured scalar accumulated without synchronization.
func badScalar(xs []float64) float64 {
	var sum float64
	var wg sync.WaitGroup
	for _, x := range xs {
		wg.Add(1)
		go func(v float64) {
			defer wg.Done()
			sum += v // want "goroutine assigns to captured variable sum without synchronization"
		}(x)
	}
	wg.Wait()
	return sum
}

// Accepted: index-partitioned fill — the index is a goroutine parameter,
// each slot written by exactly one goroutine.
func goodPartitioned(out []float64, n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			out[k] = float64(k * k)
		}(i)
	}
	wg.Wait()
}

// Accepted: mutex-guarded shared writes.
func goodLocked(m map[int]float64, n int) {
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			mu.Lock()
			m[k] = float64(k)
			mu.Unlock()
		}(i)
	}
	wg.Wait()
}

// Accepted: goroutine-local containers are private.
func goodLocal(n int) {
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]float64, n)
			for i := 0; i < n; i++ {
				buf[i] = float64(i)
			}
		}()
	}
	wg.Wait()
}
