// Package durablefsfix exercises the durable analyzer's rule 3: a rename
// through the checkpoint filesystem seam must be followed by a SyncDir in
// the same function, or a crash can roll the publication back. This fixture
// lives apart from the main durable fixture because it imports the real
// internal/checkpoint package (for the FS seam types), which the
// checkpoint-exemption test could not load under the checkpoint import path
// without an import cycle.
package durablefsfix

import (
	"path/filepath"

	"pdnsim/internal/checkpoint"
)

// Flagged: the rename publishes, but nothing makes the directory entry
// durable.
func badSeamRename(fsys checkpoint.FS, tmp, dst string) error {
	return fsys.Rename(tmp, dst) // want "FS.Rename without a following SyncDir"
}

// Flagged: a dir sync *before* the rename covers the staging, not the
// publication.
func badSyncBeforeRename(fsys checkpoint.FS, tmp, dst string) error {
	if err := fsys.SyncDir(filepath.Dir(dst)); err != nil {
		return err
	}
	return fsys.Rename(tmp, dst) // want "FS.Rename without a following SyncDir"
}

// Accepted: rename, then fsync the parent directory through the seam.
func goodSeamRename(fsys checkpoint.FS, tmp, dst string) error {
	if err := fsys.Rename(tmp, dst); err != nil {
		return err
	}
	return fsys.SyncDir(filepath.Dir(dst))
}

// Accepted: the package-level SyncDir helper is the same barrier.
func goodHelperSync(fsys checkpoint.FS, tmp, dst string) error {
	if err := fsys.Rename(tmp, dst); err != nil {
		return err
	}
	return checkpoint.SyncDir(filepath.Dir(dst))
}

// Flagged: the following SyncDir targets an *unrelated* directory — it
// cannot make this rename's publication durable, so it must not silence
// the rule.
func badUnrelatedSyncDir(fsys checkpoint.FS, tmp, dst, other string) error {
	if err := fsys.Rename(tmp, dst); err != nil { // want "FS.Rename without a following SyncDir"
		return err
	}
	return fsys.SyncDir(filepath.Dir(other))
}

// Accepted: the destination is built from dir, and dir itself is what gets
// synced — the filepath.Join spelling of the same barrier.
func goodJoinedDest(fsys checkpoint.FS, dir string) error {
	dst := filepath.Join(dir, "segments.bin")
	if err := fsys.Rename(dst+".tmp", dst); err != nil {
		return err
	}
	return fsys.SyncDir(dir)
}

// Accepted: the destination's parent reaches SyncDir through a local
// variable (one initializer hop).
func goodDirViaLocal(fsys checkpoint.FS, tmp, dst string) error {
	if err := fsys.Rename(tmp, dst); err != nil {
		return err
	}
	dir := filepath.Dir(dst)
	return fsys.SyncDir(dir)
}

// Accepted: a delegating wrapper named Rename implements the seam; the
// publication discipline is its caller's burden.
type wrapFS struct{ inner checkpoint.FS }

func (w wrapFS) Rename(oldpath, newpath string) error {
	return w.inner.Rename(oldpath, newpath)
}
