// Package hotallocfix exercises the hotalloc analyzer: allocation,
// boxing, defer and map traffic inside //pdn:hot loops are flagged; the
// same constructs in unannotated (cold) loops are not, and the accepted
// kernel shape — index arithmetic over slices — stays silent.
package hotallocfix

import "fmt"

type point struct{ x, y float64 }

func done() {}

// Flagged: every forbidden construct, one per line.
func bad(xs []float64, m map[int]float64) float64 {
	sum := 0.0
	//pdn:hot
	for i, x := range xs {
		buf := make([]float64, 4) // want "heap allocation .make."
		buf = append(buf, x)      // want "heap allocation .append."
		_ = buf
		fmt.Println(x)    // want "interface boxing"
		sum += m[i]       // want "map access"
		p := &point{x: x} // want "heap allocation"
		_ = p
		b := []byte("hot") // want "heap allocation .string conversion."
		_ = b
		defer done()                     // want "defer"
		f := func() float64 { return x } // want "closure allocation"
		_ = f
	}
	return sum
}

// Flagged: the marker on the outer loop covers the whole nest.
func badNest(a [][]float64) float64 {
	sum := 0.0
	//pdn:hot
	for i := range a {
		for j := range a[i] {
			sum += a[i][j]
			_ = new(point) // want "heap allocation .new."
		}
	}
	return sum
}

// axpy is the accepted kernel shape under a doc-level annotation: index
// arithmetic on slices only.
//
//pdn:hot
func axpy(c, b []float64, v float64) {
	for j := range b {
		c[j] += v * b[j]
	}
}

// stride has a doc-level annotation and a closure outside any loop — the
// FDTD row-stepper shape. The closure's own loop is hot and clean.
//
//pdn:hot
func stride(rows [][]float64, v float64) {
	row := func(r []float64) {
		for j := range r {
			r[j] *= v
		}
	}
	for i := range rows {
		row(rows[i])
	}
}

// cold is unannotated: the same allocations draw no findings.
func cold(xs []float64) []float64 {
	out := make([]float64, 0, len(xs))
	for _, x := range xs {
		out = append(out, x*2)
	}
	return out
}
