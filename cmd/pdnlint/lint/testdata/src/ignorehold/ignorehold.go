// Package ignoreholdfix checks the escape hatch against the new
// concurrency analyzers: a documented ignore in the function's doc
// comment waives lockhold across the whole function (the single-writer
// WAL shape), while the identical undocumented function still reports.
package ignoreholdfix

import (
	"os"
	"sync"
)

type wal struct {
	mu sync.Mutex
	f  *os.File
}

// append serialises write+fsync on one descriptor; the mutex exists for
// exactly that, so the lockhold waiver is the designed shape here.
//
//pdnlint:ignore lockhold single-writer WAL: the mutex serialises write+fsync on one descriptor and nothing else nests inside it
func (w *wal) append(line []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.f.Write(line); err != nil {
		return err
	}
	return w.f.Sync()
}

// appendUndocumented is the same code without the waiver: both the write
// and the fsync report.
func (w *wal) appendUndocumented(line []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.f.Write(line); err != nil { // want `os.File..Write while w.mu is held`
		return err
	}
	return w.f.Sync() // want `os.File..Sync while w.mu is held`
}
