// Package floateqfix exercises the floateq analyzer: no exact ==/!= on
// floating-point or complex operands except against constant zero.
package floateqfix

import "math"

// eqTol is a named tolerance, the accepted way to compare floats.
const eqTol = 1e-12

// Flagged: exact equality between computed floats.
func bad(a, b float64) bool {
	return a == b // want "on floating-point operands is exact"
}

// Flagged: inequality is the same trap.
func badNeq(a, b float64) bool {
	return a*2 != b // want "on floating-point operands is exact"
}

// Flagged: complex equality.
func badComplex(a, b complex128) bool {
	return a == b // want "on floating-point operands is exact"
}

// Flagged: comparing against a non-zero constant is still exact.
func badConst(a float64) bool {
	return a == 0.5 // want "on floating-point operands is exact"
}

// Accepted: comparison against constant zero (guard before division,
// never-assigned test, exact symmetric zero).
func goodZero(a float64) float64 {
	if a == 0 {
		return 0
	}
	if a != 0.0 {
		return 1 / a
	}
	return 0
}

// Accepted: tolerance-based comparison.
func goodTol(a, b float64) bool {
	return math.Abs(a-b) <= eqTol
}

// Accepted: integer equality is exact and fine.
func goodInt(a, b int) bool {
	return a == b
}

// Accepted: compile-time constant comparison.
func goodConst() bool {
	return 0.1+0.2 == 0.3
}
