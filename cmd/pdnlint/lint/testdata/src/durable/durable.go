// Package durablefix exercises the durable analyzer: raw file operations
// on recovery-critical paths are flagged, as are renames that publish
// before an fsync; the staged checkpoint.Save discipline and plain report
// files are accepted.
package durablefix

import (
	"os"
	"path/filepath"
)

// Flagged: a raw write to a journal path bypasses the envelope.
func badJournal(dir string, data []byte) error {
	return os.WriteFile(filepath.Join(dir, "jobs.journal"), data, 0o644) // want "raw os.WriteFile on a durable path"
}

// Flagged: the durable marker arrives through a local path variable.
func badCkpt(dir string, data []byte) error {
	path := filepath.Join(dir, "run.ckpt")
	return os.WriteFile(path, data, 0o644) // want "raw os.WriteFile on a durable path"
}

// Flagged: os.Create on a manifest.
func badManifest(dir string) (*os.File, error) {
	return os.Create(dir + "/queue.manifest") // want "raw os.Create on a durable path"
}

// Flagged: renaming into place without making the bytes durable first.
func badRename(tmp, dst string) error {
	return os.Rename(tmp, dst) // want "os.Rename without a preceding"
}

// Accepted: stage, fsync, then rename — checkpoint.Save's discipline.
// (The rename itself is clean; only a *marked* path routed around the
// envelope is rule 1's business.)
func goodRename(tmp, dst string, data []byte) error {
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, dst)
}

// Accepted: plain report files are not durable paths.
func goodReport(dir string, data []byte) error {
	return os.WriteFile(filepath.Join(dir, "report.json"), data, 0o644)
}

// Accepted: reading a snapshot is fine; only creation/publication must go
// through the envelope.
func goodRead(dir string) ([]byte, error) {
	return os.ReadFile(filepath.Join(dir, "run.snapshot"))
}
