// Package goleakfix exercises the goleak analyzer. The fixture is
// type-checked under a pdnsim/internal/serve/... import path, so the
// strict daemon-package accounting rule is armed alongside the universal
// exit-path rule; TestGoleakRelaxedOutsideDaemon re-runs the same source
// under a non-daemon path and expects only the exit-path findings.
package goleakfix

import (
	"context"
	"sync"
)

// Flagged twice: the goroutine loops forever with no exit path, and
// nothing accounts for it.
func leak(ch chan int) {
	go func() { // want "unaccounted goroutine in a daemon package"
		for { // want "no exit path"
			<-ch
		}
	}()
}

// Flagged: terminates, but the daemon cannot observe that it did.
func fireAndForget(counter *int) {
	go func() { // want "unaccounted goroutine in a daemon package"
		*counter++
	}()
}

// Accepted: WaitGroup-accounted before launch, ctx-select exit path.
func worker(ctx context.Context, wg *sync.WaitGroup, work chan int) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-ctx.Done():
				return
			case w, ok := <-work:
				if !ok {
					return
				}
				_ = w
			}
		}
	}()
}

// Accepted: bounded range loop, completion signalled by closing out.
func fanIn(items []int) chan int {
	out := make(chan int, len(items))
	go func() {
		for _, it := range items {
			out <- it
		}
		close(out)
	}()
	return out
}

// spin exits via a done channel; runNamed resolves the named callee's
// body through the same-package declaration index.
func spin(stop chan struct{}) {
	for {
		select {
		case <-stop:
			return
		default:
		}
	}
}

// Accepted: named callee with an exit path, accounted before launch.
func runNamed(wg *sync.WaitGroup, stop chan struct{}) {
	wg.Add(1)
	go spin(stop)
}

// spinForever has no exit path; the finding lands on its loop when it is
// launched as a goroutine.
func spinForever(counter *int) {
	for { // want "no exit path"
		*counter++
	}
}

func runForever(wg *sync.WaitGroup, counter *int) {
	wg.Add(1)
	go spinForever(counter)
}

// Accepted: an unbounded loop whose exit hides behind a break.
func drain(wg *sync.WaitGroup, work chan int) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			if _, ok := <-work; !ok {
				break
			}
		}
	}()
}
