package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader parses and type-checks packages of the enclosing module with only
// the standard library: module-local import paths are mapped onto
// directories under the module root, everything else (the standard library)
// is resolved by the go/importer source importer, which type-checks GOROOT
// sources directly — no `go list`, no export data, no network.
type Loader struct {
	Fset       *token.FileSet
	ModuleRoot string // directory containing go.mod
	ModulePath string // module path from go.mod, e.g. "pdnsim"

	std     types.Importer
	typed   map[string]*types.Package // import path → type info (module + std)
	pkgs    map[string]*Package       // import path → analyzed module package
	loading map[string]bool           // cycle guard for module packages
}

// NewLoader builds a loader rooted at the directory containing go.mod,
// searching upward from dir.
func NewLoader(dir string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModuleRoot: root,
		ModulePath: modPath,
		std:        importer.ForCompiler(fset, "source", nil),
		typed:      make(map[string]*types.Package),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// findModule walks up from dir to the first go.mod and reads its module
// path.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("no module line in %s/go.mod", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("no go.mod found above %s", abs)
		}
	}
}

// Import implements types.Importer so module packages can import each other
// and the standard library transparently during type checking.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if tp, ok := l.typed[path]; ok {
		return tp, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(path, l.ModulePath)
		dir := filepath.Join(l.ModuleRoot, filepath.FromSlash(strings.TrimPrefix(rel, "/")))
		p, err := l.LoadDir(dir, path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	tp, err := l.std.Import(path)
	if err != nil {
		return nil, fmt.Errorf("stdlib import %q: %w", path, err)
	}
	l.typed[path] = tp
	return tp, nil
}

// LoadDir parses and type-checks the single package in dir under the given
// import path. Test files (_test.go) are skipped: the contracts pdnlint
// enforces apply to production code, and several (float equality, exact
// error text, context.Background) are legitimately violated in tests.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("import cycle through %q", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tp, err := conf.Check(importPath, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type errors in %s: %v", importPath, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("type-check %s: %w", importPath, err)
	}
	p := &Package{
		Path: importPath, Dir: dir, Fset: l.Fset,
		Files: files, Types: tp, Info: info,
	}
	p.scanDirectives()
	l.typed[importPath] = tp
	l.pkgs[importPath] = p
	return p, nil
}

// LoadModule loads every package under the module root (skipping testdata
// fixtures and hidden directories) and returns them sorted by import path.
func (l *Loader) LoadModule() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModuleRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			n := d.Name()
			if n == "testdata" || (strings.HasPrefix(n, ".") && path != l.ModuleRoot) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") && !strings.HasSuffix(d.Name(), "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	seen := make(map[string]bool)
	for _, dir := range dirs {
		if seen[dir] {
			continue
		}
		seen[dir] = true
		rel, err := filepath.Rel(l.ModuleRoot, dir)
		if err != nil {
			return nil, err
		}
		importPath := l.ModulePath
		if rel != "." {
			importPath += "/" + filepath.ToSlash(rel)
		}
		p, err := l.LoadDir(dir, importPath)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}
