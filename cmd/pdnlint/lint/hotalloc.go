package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// Hotalloc polices the PR 5 kernel discipline (DESIGN.md §5j): loops
// annotated //pdn:hot — the blocked dense kernels in internal/mat, the
// FDTD row-stepping closures — are the measured inner loops behind the
// BENCH_*.json trajectory, and a heap allocation, interface boxing, defer,
// or map access inside one silently re-introduces the per-iteration costs
// the blocking work removed. Inside a hot loop the analyzer flags:
//
//   - make / new / append builtins and &CompositeLit (heap allocation)
//   - function literals (closure allocation per iteration)
//   - passing a concrete value to an interface parameter (boxing)
//   - string ↔ []byte/[]rune conversions (copy + allocation)
//   - defer (allocates a frame and delays work to function exit)
//   - map indexing (hash + possible growth; kernels use slices)
//   - go statements (per-iteration goroutine launch)
//
// Annotation forms: a //pdn:hot line directly above (or on) a for/range
// statement marks that loop and its nest; //pdn:hot in a function's doc
// comment marks every loop in the function, including loops in its
// closures. Cold setup loops stay unannotated — the annotation is a claim
// about the measured path, not decoration.
var Hotalloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "no heap allocation, interface boxing, defer, or map access inside //pdn:hot annotated loops",
	Run:  runHotalloc,
}

// hotMarker is the annotation comment, matched exactly after trimming.
const hotMarker = "//pdn:hot"

func runHotalloc(p *Package) []RawFinding {
	var out []RawFinding
	for _, f := range p.Files {
		hotLines := map[int]bool{}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.TrimSpace(c.Text) == hotMarker {
					hotLines[p.Fset.Position(c.Pos()).Line] = true
				}
			}
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			docHot := false
			if fd.Doc != nil {
				for _, c := range fd.Doc.List {
					if strings.TrimSpace(c.Text) == hotMarker {
						docHot = true
					}
				}
			}
			var visit func(n ast.Node)
			visit = func(n ast.Node) {
				ast.Inspect(n, func(m ast.Node) bool {
					var body *ast.BlockStmt
					switch loop := m.(type) {
					case *ast.ForStmt:
						body = loop.Body
					case *ast.RangeStmt:
						body = loop.Body
					default:
						return true
					}
					line := p.Fset.Position(m.Pos()).Line
					if docHot || hotLines[line] || hotLines[line-1] {
						out = append(out, checkHotLoop(p, body)...)
						return false // the whole nest was just checked
					}
					return true
				})
			}
			visit(fd.Body)
		}
	}
	return out
}

// checkHotLoop reports the forbidden constructs inside one hot loop body.
// Nested function literals are flagged as per-iteration allocations and
// not descended into. (Under a doc-level annotation a closure *outside*
// any loop is fine — the FDTD row steppers — and its own loops are still
// visited and checked as hot.)
func checkHotLoop(p *Package, body *ast.BlockStmt) []RawFinding {
	var out []RawFinding
	report := func(n ast.Node, what string) {
		out = append(out, RawFinding{Pos: n.Pos(), Message: fmt.Sprintf(
			"%s inside a //pdn:hot loop; the annotated kernels must run allocation-free — hoist it out of the loop or drop the annotation", what)})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			report(x, "closure allocation (func literal)")
			return false
		case *ast.DeferStmt:
			report(x, "defer")
			// args still checked; the deferred callee runs later
		case *ast.GoStmt:
			report(x, "goroutine launch")
		case *ast.UnaryExpr:
			if x.Op.String() == "&" {
				if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					report(x, "heap allocation (&composite literal)")
				}
			}
		case *ast.IndexExpr:
			if tv, ok := p.Info.Types[x.X]; ok && tv.Type != nil {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					report(x, "map access")
				}
			}
		case *ast.CallExpr:
			out = append(out, checkHotCall(p, x)...)
		}
		return true
	})
	return out
}

// checkHotCall classifies one call inside a hot loop: allocating builtin,
// allocating conversion, or interface boxing at an argument.
func checkHotCall(p *Package, call *ast.CallExpr) []RawFinding {
	var out []RawFinding
	report := func(what string) {
		out = append(out, RawFinding{Pos: call.Pos(), Message: fmt.Sprintf(
			"%s inside a //pdn:hot loop; the annotated kernels must run allocation-free — hoist it out of the loop or drop the annotation", what)})
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch b.Name() {
			case "make", "new", "append":
				report("heap allocation (" + b.Name() + ")")
			}
			return out
		}
	}
	// Conversion: T(x). Flag conversions that allocate or box.
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type
		src := p.Info.Types[call.Args[0]].Type
		if src != nil {
			switch {
			case types.IsInterface(dst) && !types.IsInterface(src):
				report("interface boxing (conversion)")
			case isStringBytesConv(dst, src):
				report("heap allocation (string conversion)")
			}
		}
		return out
	}
	// Regular call: concrete arguments landing in interface parameters box.
	fn := calleeFunc(p.Info, call)
	if fn == nil {
		return out
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return out
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := p.Info.Types[arg].Type
		if at == nil || types.IsInterface(at) {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		report(fmt.Sprintf("interface boxing (concrete %s into %s parameter of %s)", at, pt, fn.Name()))
	}
	return out
}

// isStringBytesConv reports a string ↔ []byte / []rune conversion.
func isStringBytesConv(dst, src types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteSlice := func(t types.Type) bool {
		sl, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := sl.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(dst) && isByteSlice(src)) || (isByteSlice(dst) && isStr(src))
}
