package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"pdnsim/cmd/pdnlint/lint"
)

// Flag handling is tested without loading the module wherever possible:
// the usage-error paths return before the loader runs, so they are cheap;
// the full -sarif drive over a real package is gated behind -short.

func TestRunRejectsUnknownFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2; stderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "flag provided but not defined") {
		t.Fatalf("stderr should carry the flag error, got %q", errb.String())
	}
}

func TestRunRejectsJSONPlusSARIF(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-json", "-sarif"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "mutually exclusive") {
		t.Fatalf("stderr = %q, want the mutual-exclusion message", errb.String())
	}
	if out.Len() != 0 {
		t.Fatalf("usage errors must not write to stdout, got %q", out.String())
	}
}

func TestSelectPackages(t *testing.T) {
	pkgs := []*lint.Package{
		{Path: "pdnsim/internal/mat", Dir: "../../internal/mat"},
		{Path: "pdnsim/internal/serve", Dir: "../../internal/serve"},
		{Path: "pdnsim/cmd/pdnlint", Dir: "."},
	}
	if sel := selectPackages(pkgs, nil, ""); sel != nil {
		t.Fatalf("no args must keep everything (nil), got %v", sel)
	}
	if sel := selectPackages(pkgs, []string{"./..."}, ""); sel != nil {
		t.Fatalf("./... must keep everything (nil), got %v", sel)
	}
	sel := selectPackages(pkgs, []string{"../../internal/mat"}, "")
	if len(sel) != 1 || sel[0].Path != "pdnsim/internal/mat" {
		t.Fatalf("plain dir selection failed: %v", sel)
	}
	sel = selectPackages(pkgs, []string{"../../internal/..."}, "")
	if len(sel) != 2 {
		t.Fatalf("subtree selection should keep the two internal packages, got %v", sel)
	}
	if sel := selectPackages(pkgs, []string{"../../does-not-exist"}, ""); len(sel) != 0 {
		t.Fatalf("unmatched selection should keep nothing, got %v", sel)
	}
}

func TestRunSARIFOverOnePackage(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks packages")
	}
	// The lint package directory itself is a cheap, always-clean target;
	// the run must exit 0 and emit a decodable SARIF log.
	var out, errb bytes.Buffer
	code := run([]string{"-sarif", "./lint"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stderr: %s\nstdout: %s", code, errb.String(), out.String())
	}
	var log lint.SARIFLog
	if err := json.Unmarshal(out.Bytes(), &log); err != nil {
		t.Fatalf("stdout is not SARIF: %v\n%s", err, out.String())
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("unexpected SARIF shape: version=%q runs=%d", log.Version, len(log.Runs))
	}
	if len(log.Runs[0].Tool.Driver.Rules) != len(lint.Analyzers)+1 {
		t.Fatalf("rule table has %d entries, want %d", len(log.Runs[0].Tool.Driver.Rules), len(lint.Analyzers)+1)
	}
}
