// benchjson converts `go test -bench` output into a machine-readable
// benchmark trajectory file and optionally enforces a regression gate
// against an earlier run.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 3x ./... | \
//	    go run ./cmd/benchjson -label after -out BENCH_2026-08-06.json -append
//
// Each invocation parses the benchmark lines on stdin into one labelled run
// (name, iterations, ns/op, B/op, allocs/op, and any custom metrics such as
// the figure benches' RMS_%), and writes it to -out. With -append, existing
// runs in the file are kept and the new run is added, building the
// before/after trajectory the performance work is judged against.
//
// With -baseline FILE[:LABEL], the new run is compared benchmark by
// benchmark against the baseline run (the labelled run, or the last run in
// the file): any benchmark whose ns/op grew by more than the regression
// factor fails the invocation with a non-zero exit, which is how CI's
// bench-smoke step catches order-of-magnitude performance regressions
// without being tripped by shared-runner noise.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// regressionFactor is the gate for -baseline comparisons: a benchmark fails
// the gate when its ns/op exceeds the baseline's by more than this factor.
// 2× is deliberately loose — CI runs benchmarks once (-benchtime 1x) on
// shared runners where 20–50% noise is routine, so the gate is tuned to
// catch real regressions (an accidental O(n³) path, a lost parallel
// dispatch) rather than scheduling jitter.
const regressionFactor = 2.0

// Benchmark is one parsed `go test -bench` result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Run is one labelled benchmark session.
type Run struct {
	Label      string      `json:"label"`
	Date       string      `json:"date"`
	GoVersion  string      `json:"go_version"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// File is the on-disk trajectory: ordered runs, oldest first.
type File struct {
	Runs []Run `json:"runs"`
}

func main() {
	label := flag.String("label", "run", "label for this benchmark run")
	out := flag.String("out", "", "output trajectory file (default: stdout)")
	appendRuns := flag.Bool("append", false, "keep existing runs in -out and append this one")
	baseline := flag.String("baseline", "", "trajectory file[:label] to enforce the regression gate against")
	flag.Parse()

	run, err := parseRun(*label)
	if err != nil {
		fatal(err)
	}
	if len(run.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin"))
	}

	// Resolve the baseline before writing -out: when they are the same
	// trajectory file, the gate must compare against the runs that were
	// there before this one, not against the run being appended.
	var base *Run
	if *baseline != "" {
		base, err = resolveBaseline(*baseline)
		if err != nil {
			fatal(err)
		}
	}

	var file File
	if *appendRuns && *out != "" {
		if prev, err := loadFile(*out); err == nil {
			file = *prev
		} else if !os.IsNotExist(err) {
			fatal(err)
		}
	}
	file.Runs = append(file.Runs, run)

	data, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}

	if base != nil {
		if err := checkRegression(*base, run); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
	os.Exit(2)
}

func loadFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

// parseRun reads `go test -bench` output from stdin. Benchmark lines have
// the shape:
//
//	BenchmarkName-8   	 3	 9986151 ns/op	 1290672 B/op	 17 allocs/op	 2.563 RMS_%
//
// i.e. name, iteration count, then value/unit pairs. Non-benchmark lines
// (package headers, PASS/ok) are ignored.
func parseRun(label string) (Run, error) {
	run := Run{
		Label:      label,
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass output through so the run stays readable
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. "Benchmarking..." chatter, not a result line
		}
		b := Benchmark{
			// Strip the -GOMAXPROCS suffix so runs on different machines compare.
			Name:       strings.TrimPrefix(strings.SplitN(fields[0], "-", 2)[0], "Benchmark"),
			Iterations: iters,
		}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return run, fmt.Errorf("bad value %q in line %q", fields[i], line)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = val
			case "B/op":
				b.BytesPerOp = val
			case "allocs/op":
				b.AllocsPerOp = val
			default:
				if b.Metrics == nil {
					b.Metrics = make(map[string]float64)
				}
				b.Metrics[unit] = val
			}
		}
		run.Benchmarks = append(run.Benchmarks, b)
	}
	return run, sc.Err()
}

// resolveBaseline loads the baseline run from "file" or "file:label": the
// labelled run, or the last run in the file.
func resolveBaseline(spec string) (*Run, error) {
	path, wantLabel := spec, ""
	if i := strings.LastIndex(spec, ":"); i > 0 {
		path, wantLabel = spec[:i], spec[i+1:]
	}
	f, err := loadFile(path)
	if err != nil {
		return nil, err
	}
	if len(f.Runs) == 0 {
		return nil, fmt.Errorf("%s: no runs", path)
	}
	base := f.Runs[len(f.Runs)-1]
	if wantLabel != "" {
		found := false
		for _, r := range f.Runs {
			if r.Label == wantLabel {
				base, found = r, true
			}
		}
		if !found {
			return nil, fmt.Errorf("%s: no run labelled %q", path, wantLabel)
		}
	}
	base.Label = base.Label + " @ " + path
	return &base, nil
}

// checkRegression reports every benchmark whose ns/op exceeds
// baseline·regressionFactor. Benchmarks present on only one side are
// skipped: the gate guards shared benchmarks, not coverage.
func checkRegression(base Run, run Run) error {
	baseNs := make(map[string]float64, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseNs[b.Name] = b.NsPerOp
	}
	var failures []string
	for _, b := range run.Benchmarks {
		ref, ok := baseNs[b.Name]
		if !ok || ref <= 0 {
			continue
		}
		if b.NsPerOp > ref*regressionFactor {
			failures = append(failures,
				fmt.Sprintf("%s: %.3g ns/op vs baseline %.3g (%.2fx > %gx gate)",
					b.Name, b.NsPerOp, ref, b.NsPerOp/ref, regressionFactor))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("performance regression vs baseline %s:\n  %s",
			base.Label, strings.Join(failures, "\n  "))
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks within %gx of baseline %s\n",
		len(run.Benchmarks), regressionFactor, base.Label)
	return nil
}
