// Command pdnload drives a running pdnserve daemon with a closed-loop load
// test and reports end-to-end job latency percentiles and throughput.
//
// Usage:
//
//	pdnload -addr http://127.0.0.1:8844 [-n 50] [-c 4] [-board board.json] \
//	        [-nf 0] [-deadline-ms 0] [-label serve-baseline] [-out BENCH.json] [-append]
//
// Each of -c workers submits jobs (POST /jobs) and polls each one to a
// terminal state; the measured latency is submit-to-terminal, the number a
// client actually experiences. Shed submissions (429) honour the daemon's
// Retry-After and are retried — they count in the shed metric, not as
// failures. Terminal statuses carrying durable:false (the daemon in degraded
// durability) are counted in the non_durable_jobs metric — a load run against
// a sick disk should say so. The summary is written as a cmd/benchjson-compatible trajectory
// run (label, date, percentile metrics), so service latency baselines live in
// the same files and tooling as the kernel benchmarks.
//
// The whole run is interruptible: SIGINT/SIGTERM cancels the load context,
// and every wait the generator performs — the Retry-After backoff after a
// 429 shed, the status poll interval, the HTTP requests themselves —
// observes that cancellation, so Ctrl-C stops the run promptly instead of
// finishing a multi-second sleep first.
//
// Exit codes: 2 usage, 5 I/O or transport failure, 4 when any job ends in a
// failed state.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"syscall"
	"time"

	"pdnsim/internal/cli"
)

// demoBoard is the built-in workload when -board is not given: big enough
// for the solve to dominate HTTP overhead, small enough for quick baselines.
const demoBoard = `{
  "name": "pdnload demo plane",
  "shape": {"type": "rect", "w_mm": 50, "h_mm": 40},
  "plane_sep_mm": 0.4,
  "eps_r": 4.5,
  "sheet_res_ohm_sq": 0.0006,
  "mesh_nx": 16,
  "mesh_ny": 12,
  "extra_nodes": 10,
  "ports": [
    {"name": "U1", "x_mm": 40, "y_mm": 30},
    {"name": "VRM", "x_mm": 5, "y_mm": 5}
  ]
}`

// Benchmark, Run and File mirror cmd/benchjson's trajectory schema so load
// baselines append into the same files.
type Benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

type Run struct {
	Label      string      `json:"label"`
	Date       string      `json:"date"`
	GoVersion  string      `json:"go_version"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

type File struct {
	Runs []Run `json:"runs"`
}

// jobOutcome is one completed job as the load generator saw it.
type jobOutcome struct {
	latency    time.Duration
	state      string
	shed       int  // 429s absorbed before this submission was accepted
	nonDurable bool // terminal status carried durable:false (degraded daemon)
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8844", "base URL of the pdnserve daemon")
	n := flag.Int("n", 50, "total jobs to run")
	c := flag.Int("c", 4, "concurrent clients")
	boardPath := flag.String("board", "", "board description JSON (default: a built-in demo plane)")
	nf := flag.Int("nf", 0, "sweep points per job (0 = extraction only)")
	fmin := flag.Float64("fmin", 0.1e9, "sweep start frequency (Hz), used when -nf > 0")
	fmax := flag.Float64("fmax", 10e9, "sweep stop frequency (Hz), used when -nf > 0")
	deadlineMS := flag.Int64("deadline-ms", 0, "per-job deadline to request (0 = server default)")
	label := flag.String("label", "serve", "benchjson run label")
	out := flag.String("out", "", "write the benchjson trajectory to this file (default: stdout)")
	appendRuns := flag.Bool("append", false, "keep existing runs in -out and append this one")
	flag.Parse()
	if flag.NArg() != 0 || *n < 1 || *c < 1 {
		fmt.Fprintln(os.Stderr, "usage: pdnload [flags]")
		flag.PrintDefaults()
		os.Exit(cli.ExitUsage)
	}

	board := []byte(demoBoard)
	if *boardPath != "" {
		data, err := os.ReadFile(*boardPath)
		if err != nil {
			fatal(cli.ExitIO, err)
		}
		board = data
	}
	req := map[string]any{"board": json.RawMessage(board)}
	if *nf > 0 {
		req["sweep"] = map[string]any{"fmin_hz": *fmin, "fmax_hz": *fmax, "nf": *nf}
	}
	if *deadlineMS > 0 {
		req["deadline_ms"] = *deadlineMS
	}
	body, err := json.Marshal(req)
	if err != nil {
		fatal(cli.ExitIO, err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	client := &http.Client{Timeout: 30 * time.Second}
	outcomes := make([]jobOutcome, 0, *n)
	var mu sync.Mutex
	var firstErr error
	next := make(chan struct{}, *n)
	for i := 0; i < *n; i++ {
		next <- struct{}{}
	}
	close(next)

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range next {
				if ctx.Err() != nil {
					return
				}
				oc, err := runJob(ctx, client, *addr, body)
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
				} else {
					outcomes = append(outcomes, oc)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	if ctx.Err() != nil {
		fatal(cli.ExitIO, fmt.Errorf("interrupted after %d of %d jobs", len(outcomes), *n))
	}
	if firstErr != nil {
		fatal(cli.ExitIO, firstErr)
	}

	// Sweep runs and extraction-only runs measure different work; distinct
	// benchmark names keep the trajectory regression gate from comparing one
	// against the other.
	benchName := "ServeJobLatency"
	if *nf > 0 {
		benchName = "ServeSweepJobLatency"
	}
	run := summarize(*label, benchName, outcomes, wall)
	if err := write(*out, *appendRuns, run); err != nil {
		fatal(cli.ExitIO, err)
	}
	failed := 0
	for _, oc := range outcomes {
		if oc.state == "failed" {
			failed++
		}
	}
	if failed > 0 {
		fatal(cli.ExitSolve, fmt.Errorf("%d of %d jobs ended in a failed state", failed, len(outcomes)))
	}
}

// runJob pushes one job through the daemon: submit (absorbing 429 shed with
// the server's Retry-After), then poll to a terminal state. Every wait —
// the backoff sleep, the poll interval, the requests — observes ctx, so a
// cancelled run returns promptly instead of riding out a multi-second
// Retry-After or polling a job that will never terminate.
func runJob(ctx context.Context, client *http.Client, addr string, body []byte) (jobOutcome, error) {
	var oc jobOutcome
	start := time.Now()
	var id string
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+"/jobs", bytes.NewReader(body))
		if err != nil {
			return oc, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			return oc, err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			oc.shed++
			ra, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
			drain(resp)
			if ra < 1 {
				ra = 1
			}
			if err := sleepCtx(ctx, time.Duration(ra)*time.Second); err != nil {
				return oc, err
			}
			continue
		}
		if resp.StatusCode != http.StatusAccepted {
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			return oc, fmt.Errorf("submit: status %d: %s", resp.StatusCode, bytes.TrimSpace(raw))
		}
		var acc struct {
			ID string `json:"id"`
		}
		err = json.NewDecoder(resp.Body).Decode(&acc)
		resp.Body.Close()
		if err != nil || acc.ID == "" {
			return oc, fmt.Errorf("submit: undecodable accept body (%v)", err)
		}
		id = acc.ID
		break
	}

	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/jobs/"+id, nil)
		if err != nil {
			return oc, err
		}
		resp, err := client.Do(req)
		if err != nil {
			return oc, err
		}
		var st struct {
			State string `json:"state"`
			// Pointer: a daemon predating the durability API omits the
			// field, which must not count as a non-durable response.
			Durable *bool `json:"durable"`
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return oc, fmt.Errorf("status %s: %v", id, err)
		}
		switch st.State {
		case "done", "partial", "failed", "cancelled", "snapshotted", "flushed":
			oc.state = st.State
			oc.nonDurable = st.Durable != nil && !*st.Durable
			oc.latency = time.Since(start)
			return oc, nil
		}
		if err := sleepCtx(ctx, 10*time.Millisecond); err != nil {
			return oc, err
		}
	}
}

// sleepCtx waits d or until ctx is cancelled — a timer inside a select (the
// supervise backoff pattern), never a bare time.Sleep, so interrupts are
// observed mid-wait. Returns ctx.Err() when cancelled.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func drain(resp *http.Response) {
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// summarize folds the outcomes into one benchjson run with percentile
// metrics.
func summarize(label, benchName string, outcomes []jobOutcome, wall time.Duration) Run {
	lats := make([]float64, 0, len(outcomes))
	shed, abnormal, nonDurable := 0, 0, 0
	for _, oc := range outcomes {
		lats = append(lats, float64(oc.latency))
		shed += oc.shed
		if oc.state != "done" {
			abnormal++
		}
		if oc.nonDurable {
			nonDurable++
		}
	}
	sort.Float64s(lats)
	mean := 0.0
	for _, l := range lats {
		mean += l
	}
	if len(lats) > 0 {
		mean /= float64(len(lats))
	}
	b := Benchmark{
		Name:       benchName,
		Iterations: int64(len(lats)),
		NsPerOp:    mean,
		Metrics: map[string]float64{
			"p50_ms":                pct(lats, 50) / 1e6,
			"p95_ms":                pct(lats, 95) / 1e6,
			"p99_ms":                pct(lats, 99) / 1e6,
			"throughput_jobs_per_s": float64(len(lats)) / wall.Seconds(),
			"shed_429":              float64(shed),
			"abnormal_jobs":         float64(abnormal),
			"non_durable_jobs":      float64(nonDurable),
		},
	}
	return Run{
		Label:      label,
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchmarks: []Benchmark{b},
	}
}

// pct returns the p-th percentile of sorted samples (nearest-rank).
func pct(sorted []float64, p int) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted)*p + 99) / 100
	if idx < 1 {
		idx = 1
	}
	return sorted[idx-1]
}

// write persists the run, appending to an existing trajectory when asked.
func write(path string, appendRuns bool, run Run) error {
	var f File
	if appendRuns && path != "" {
		if data, err := os.ReadFile(path); err == nil {
			if err := json.Unmarshal(data, &f); err != nil {
				return fmt.Errorf("existing trajectory %s is unreadable: %w", path, err)
			}
		}
	}
	f.Runs = append(f.Runs, run)
	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func fatal(code int, err error) {
	fmt.Fprintf(os.Stderr, "pdnload: %v\n", err)
	os.Exit(code)
}
