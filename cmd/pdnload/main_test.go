package main

// Regression tests for the cancellation defect pdnlint's tightened ctxflow
// rule surfaced: runJob used bare time.Sleep for the 429 Retry-After
// backoff and the status poll interval, so an interrupt (Ctrl-C) had to
// ride out the full sleep — up to the server's whole Retry-After — before
// the load generator noticed. The fixed runJob threads a context through
// every wait; these tests cancel it mid-wait and require a prompt return.
// On the pre-fix code both blow their 2-second deadlines (the first by
// sleeping toward a 3600 s Retry-After).

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestRunJobCancelDuringRetryAfterBackoff: the daemon sheds with a huge
// Retry-After; cancelling the context mid-backoff must abort the submit
// loop immediately instead of finishing the sleep.
func TestRunJobCancelDuringRetryAfterBackoff(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "3600")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := runJob(ctx, srv.Client(), srv.URL, []byte(`{}`))
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the worker reach the backoff sleep
	cancel()

	select {
	case err := <-done:
		if err == nil {
			t.Fatal("runJob returned nil error from a cancelled backoff")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("runJob still sleeping through Retry-After after cancellation; the backoff must observe ctx")
	}
}

// TestRunJobCancelDuringPoll: the job never reaches a terminal state;
// cancelling the context must break the poll loop.
func TestRunJobCancelDuringPoll(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			w.WriteHeader(http.StatusAccepted)
			json.NewEncoder(w).Encode(map[string]string{"id": "j-000001"})
			return
		}
		json.NewEncoder(w).Encode(map[string]string{"state": "running"})
	}))
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := runJob(ctx, srv.Client(), srv.URL, []byte(`{}`))
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the worker enter the poll loop
	cancel()

	select {
	case err := <-done:
		if err == nil {
			t.Fatal("runJob returned nil error from a cancelled poll loop")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("runJob still polling a never-terminal job after cancellation; the poll must observe ctx")
	}
}

// TestSleepCtx pins the helper's two behaviours: a live context waits out
// the duration, a cancelled one returns its error without waiting.
func TestSleepCtx(t *testing.T) {
	if err := sleepCtx(context.Background(), time.Millisecond); err != nil {
		t.Fatalf("sleepCtx with a live context: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if err := sleepCtx(ctx, time.Hour); err == nil {
		t.Fatal("sleepCtx with a cancelled context returned nil")
	}
	if time.Since(start) > time.Second {
		t.Fatal("sleepCtx did not return promptly on a cancelled context")
	}
}
