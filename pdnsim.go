// Package pdnsim is an open-source reproduction of the DAC'98 paper
// "Electromagnetic Modeling and Signal Integrity Simulation of Power/Ground
// Networks in High Speed Digital Packages and Printed Circuit Boards"
// (F. Y. Yuan): a boundary-element extractor that turns power/ground plane
// geometry into distributed RLC equivalent circuits, an MNA circuit engine
// for time- and frequency-domain analysis, a multiconductor transmission
// line solver, a 2-D FDTD reference solver, and an integrated
// simultaneous-switching-noise co-simulation.
//
// This root package is the public facade: it re-exports the stable API of
// the internal packages so downstream users interact with one import path.
// The typical flow is
//
//	spec, _ := pdnsim.ParseBoard(jsonBytes)         // or build a BoardSpec in code
//	res, _ := spec.Extract()                        // mesh → BEM → equivalent circuit
//	z, _ := res.Network.Zin(0, 2*math.Pi*1e9)       // frequency domain
//	ckt := pdnsim.NewCircuit()                      // time domain co-simulation
//	ports, _ := res.Network.Attach(ckt, "plane")
//	...
//
// See the examples/ directory for complete programs and cmd/experiments for
// the reproduction of every figure in the paper.
package pdnsim

import (
	"context"

	"pdnsim/internal/bem"
	"pdnsim/internal/cavity"
	"pdnsim/internal/circuit"
	"pdnsim/internal/core"
	"pdnsim/internal/device"
	"pdnsim/internal/diag"
	"pdnsim/internal/extract"
	"pdnsim/internal/eye"
	"pdnsim/internal/fdtd"
	"pdnsim/internal/geom"
	"pdnsim/internal/greens"
	"pdnsim/internal/mat"
	"pdnsim/internal/mesh"
	"pdnsim/internal/pkgmodel"
	"pdnsim/internal/simerr"
	"pdnsim/internal/sparam"
	"pdnsim/internal/ssn"
	"pdnsim/internal/tline"
)

// Error taxonomy. Every error returned by the solve layer belongs to one of
// these classes; test with errors.Is and read structured detail with
// errors.As on the corresponding *Error types:
//
//	if errors.Is(err, pdnsim.ErrSingular) {
//	    var se *pdnsim.SingularError
//	    errors.As(err, &se) // se.Node names the offending circuit node
//	}
var (
	// ErrSingular marks a singular or numerically unfactorable system.
	ErrSingular = simerr.ErrSingular
	// ErrNonConvergence marks an iteration that exhausted its budget.
	ErrNonConvergence = simerr.ErrNonConvergence
	// ErrBadInput marks invalid user input (including recovered panics).
	ErrBadInput = simerr.ErrBadInput
	// ErrCancelled marks a run stopped by context cancellation or timeout.
	ErrCancelled = simerr.ErrCancelled
	// ErrNaN marks a non-finite value detected in a solution vector.
	ErrNaN = simerr.ErrNaN
	// ErrIllConditioned marks a system whose conditioning or physics
	// invariants (symmetry, passivity, stability margins) are too far gone
	// for the results to be trusted.
	ErrIllConditioned = simerr.ErrIllConditioned
)

// Structured error detail types (retrieve with errors.As).
type (
	// SingularError names the node/row where factorisation broke down.
	SingularError = simerr.SingularError
	// NonConvergenceError reports the iteration count and worst residual.
	NonConvergenceError = simerr.NonConvergenceError
	// BadInputError describes rejected input.
	BadInputError = simerr.BadInputError
	// CancelledError wraps the context error that stopped a run.
	CancelledError = simerr.CancelledError
	// NaNError reports the time point and first non-finite unknown.
	NaNError = simerr.NaNError
	// IllConditionedError reports the quantity, value and limit of a failed
	// numerical-trust check.
	IllConditionedError = simerr.IllConditionedError
	// SolveStats counts Newton iterations, retries and timestep halvings of
	// a transient run (TranResult.Stats).
	SolveStats = circuit.SolveStats
)

// Physical constants (SI).
const (
	Eps0 = greens.Eps0 // vacuum permittivity, F/m
	Mu0  = greens.Mu0  // vacuum permeability, H/m
	C0   = greens.C0   // speed of light, m/s
)

// Geometry.
type (
	// Point is a 2-D point (metres).
	Point = geom.Point
	// Rect is an axis-aligned rectangle.
	Rect = geom.Rect
	// Polygon is a simple polygon.
	Polygon = geom.Polygon
	// Shape is a polygon with holes describing one plane's copper.
	Shape = geom.Shape
)

// RectShape builds a rectangular plane shape.
func RectShape(x0, y0, w, h float64) Shape { return geom.RectShape(x0, y0, w, h) }

// LShape builds an L-shaped plane (outline minus a corner notch).
func LShape(w, h, notchW, notchH float64) Shape { return geom.LShape(w, h, notchW, notchH) }

// SplitPlanes builds two complementary nets sharing one layer (paper Fig. 1).
func SplitPlanes(w, h, splitX, gap float64) (left, right Shape) {
	return geom.SplitPlanes(w, h, splitX, gap)
}

// Meshing.
type (
	// Mesh is a quadrilateral plane discretisation.
	Mesh = mesh.Mesh
	// MeshStats summarises a discretisation.
	MeshStats = mesh.Stats
)

// GridMesh meshes a shape into nx×ny boundary elements. Degenerate shapes
// that panic inside the geometry kernel surface as ErrBadInput.
func GridMesh(s Shape, nx, ny int) (m *Mesh, err error) {
	defer simerr.RecoverInto(&err, "pdnsim: GridMesh")
	return mesh.Grid(s, nx, ny)
}

// Green's functions and BEM.
type (
	// Kernel is a layered-media quasi-static Green's function.
	Kernel = greens.Kernel
	// KernelMode selects the stackup model.
	KernelMode = greens.KernelMode
	// BEMOptions configure matrix assembly.
	BEMOptions = bem.Options
	// Assembly holds the BEM operators of a meshed plane.
	Assembly = bem.Assembly
)

// Kernel modes.
const (
	FreeSpace  = greens.FreeSpace
	OverGround = greens.OverGround
	Microstrip = greens.Microstrip
)

// NewKernel builds a Green's function kernel for a conductor at height h
// over its return plane in a dielectric epsR.
func NewKernel(mode KernelMode, h, epsR float64, nImages int) (*Kernel, error) {
	return greens.NewKernel(mode, h, epsR, nImages)
}

// DefaultBEMOptions returns the recommended assembly configuration.
func DefaultBEMOptions() BEMOptions { return bem.DefaultOptions() }

// Assemble fills the BEM matrices for a meshed plane.
func Assemble(m *Mesh, k *Kernel, opts BEMOptions) (*Assembly, error) {
	return bem.Assemble(m, k, opts)
}

// AssembleCtx is Assemble with cancellation: the panel-integral loops check
// ctx periodically and return an ErrCancelled-class error once it is done.
func AssembleCtx(ctx context.Context, m *Mesh, k *Kernel, opts BEMOptions) (*Assembly, error) {
	return bem.AssembleCtx(ctx, m, k, opts)
}

// Extraction.
type (
	// Network is an extracted N-node RLC equivalent circuit.
	Network = extract.Network
	// NetworkBranch is one R-L‖C branch of the equivalent circuit.
	NetworkBranch = extract.Branch
	// ExtractOptions tune the port reduction.
	ExtractOptions = extract.Options
)

// ExtractNetwork reduces an assembled plane to its equivalent circuit.
func ExtractNetwork(a *Assembly, opts ExtractOptions) (*Network, error) {
	return extract.Extract(a, opts)
}

// ExtractNetworkCtx is ExtractNetwork with cancellation checked at each
// reduction stage.
func ExtractNetworkCtx(ctx context.Context, a *Assembly, opts ExtractOptions) (*Network, error) {
	return extract.ExtractCtx(ctx, a, opts)
}

// Foster-chain macromodels (exact model-order reduction of a lossless
// driving-point impedance).
type (
	// FosterModel is a synthesised reactance chain.
	FosterModel = extract.Foster
	// FosterTank is one parallel L-C section.
	FosterTank = extract.FosterTank
)

// Board-level pipeline (JSON-facing).
type (
	// BoardSpec is a JSON-loadable plane description (mm units).
	BoardSpec = core.BoardSpec
	// PortSpec places a named connection on a BoardSpec.
	PortSpec = core.PortSpec
	// ShapeSpec describes the plane outline of a BoardSpec.
	ShapeSpec = core.ShapeSpec
	// ExtractResult bundles mesh, assembly and network of one run.
	ExtractResult = core.Result
)

// ParseBoard decodes and validates a JSON board description.
func ParseBoard(data []byte) (*BoardSpec, error) { return core.ParseBoard(data) }

// Circuit engine.
type (
	// Circuit is an MNA netlist.
	Circuit = circuit.Circuit
	// Waveform is a time-dependent source value.
	Waveform = circuit.Waveform
	// DC is a constant source value.
	DC = circuit.DC
	// Pulse is the SPICE-style pulse waveform.
	Pulse = circuit.Pulse
	// PWL is a piecewise-linear waveform.
	PWL = circuit.PWL
	// Sine is a sinusoidal waveform.
	Sine = circuit.Sine
	// ACSource is a small-signal stimulus.
	ACSource = circuit.ACSource
	// TranOptions configure a transient run.
	TranOptions = circuit.TranOptions
	// TranResult holds transient waveforms.
	TranResult = circuit.Result
	// ACResult holds one AC solution.
	ACResult = circuit.ACResult
	// Method selects the integration scheme.
	Method = circuit.Method
	// MOSFET is a level-1 transistor.
	MOSFET = circuit.MOSFET
	// Diode is an exponential junction diode.
	Diode = circuit.Diode
)

// Integration schemes and the ground node.
const (
	Trapezoidal   = circuit.Trapezoidal
	BackwardEuler = circuit.BackwardEuler
	Ground        = circuit.Ground
)

// NewCircuit returns an empty netlist.
func NewCircuit() *Circuit { return circuit.New() }

// NewPWL validates and builds a piecewise-linear waveform.
func NewPWL(t, v []float64) (PWL, error) { return circuit.NewPWL(t, v) }

// Transmission lines.
type (
	// TLineGeometry describes a multiconductor microstrip cross-section.
	TLineGeometry = tline.Geometry
	// TLineStrip is one conductor of the cross-section.
	TLineStrip = tline.Strip
	// TLineParams are extracted per-unit-length matrices.
	TLineParams = tline.Params
)

// SolveTLine extracts per-unit-length L/C matrices with the 2-D MoM solver.
func SolveTLine(g TLineGeometry) (*TLineParams, error) { return tline.Solve(g) }

// FDTD reference solver.
type (
	// FDTDSim is a 2-D plane-pair FDTD simulation.
	FDTDSim = fdtd.Sim
	// FDTDPort is a resistive Thevenin port.
	FDTDPort = fdtd.Port
)

// NewFDTD builds a plane-pair FDTD simulation.
func NewFDTD(s Shape, nx, ny int, d, epsR, rsq float64) (*FDTDSim, error) {
	return fdtd.New(s, nx, ny, d, epsR, rsq)
}

// Analytic cavity model.
type (
	// CavityModel is the closed-form rectangular plane-pair impedance.
	CavityModel = cavity.Model
)

// NewCavity builds an analytic cavity model.
func NewCavity(a, b, d, epsR float64) (m *CavityModel, err error) {
	defer simerr.RecoverInto(&err, "pdnsim: NewCavity")
	return cavity.New(a, b, d, epsR)
}

// S-parameters.
type (
	// SSweep is an S-parameter frequency sweep.
	SSweep = sparam.Sweep
	// SPoint is one frequency point of a sweep.
	SPoint = sparam.Point
)

// SweepS computes S-parameters from a per-frequency impedance evaluator.
func SweepS(freqs []float64, z0 float64, zAt func(omega float64) (*CMatrix, error)) (*SSweep, error) {
	return sparam.SweepZ(freqs, z0, zAt)
}

// SweepSCtx is SweepS with cancellation checked at each frequency point and
// threaded into the impedance evaluation itself (use Network.PortZCtx as zAt
// so a hung point is cancellable mid-solve).
func SweepSCtx(ctx context.Context, freqs []float64, z0 float64, zAt func(ctx context.Context, omega float64) (*CMatrix, error)) (*SSweep, error) {
	return sparam.SweepZCtx(ctx, freqs, z0, zAt)
}

// LinSpace returns n evenly spaced values from f0 to f1.
func LinSpace(f0, f1 float64, n int) []float64 { return sparam.LinSpace(f0, f1, n) }

// Devices and packages.
type (
	// CMOSParams size a transistor-level driver.
	CMOSParams = device.CMOSParams
	// RampParams size a behavioural driver.
	RampParams = device.RampParams
	// IVTable is an IBIS-style I/V table.
	IVTable = device.IVTable
	// Pin holds package pin parasitics.
	Pin = pkgmodel.Pin
)

// Preset package pins.
var (
	QFPPin      = pkgmodel.QFPPin
	BGAPin      = pkgmodel.BGAPin
	WirebondPin = pkgmodel.WirebondPin
)

// SSN co-simulation.
type (
	// SSNBoard describes the plane pair of an SSN study.
	SSNBoard = ssn.Board
	// SSNChip places a component.
	SSNChip = ssn.Chip
	// SSNDecap is a decoupling capacitor.
	SSNDecap = ssn.Decap
	// SSNVRM is the regulator connection.
	SSNVRM = ssn.VRM
	// SSNSystem is a built co-simulation.
	SSNSystem = ssn.System
	// SSNReport summarises one run.
	SSNReport = ssn.Report
)

// Driver kinds for SSN chips.
const (
	SSNRampDriver = ssn.RampDriver
	SSNCMOSDriver = ssn.CMOSDriver
	SSNIBISDriver = ssn.IBISDriver
)

// BuildSSN assembles the integrated co-simulation.
func BuildSSN(b SSNBoard, vrm SSNVRM, chips []SSNChip, decaps []SSNDecap) (s *SSNSystem, err error) {
	defer simerr.RecoverInto(&err, "pdnsim: BuildSSN")
	return ssn.Build(b, vrm, chips, decaps)
}

// Decap optimisation (paper §6.2's "optimize the decoupling strategy").
type (
	// DecapCandidate is a mountable capacitor option for the optimiser.
	DecapCandidate = ssn.DecapCandidate
	// OptimizeSpec configures a greedy decap placement run.
	OptimizeSpec = ssn.OptimizeSpec
	// OptimizeResult reports the chosen decap population.
	OptimizeResult = ssn.OptimizeResult
)

// OptimizeDecaps greedily places decoupling capacitors to drive the PDN
// impedance at an observation port below a target mask.
func OptimizeDecaps(spec OptimizeSpec) (*OptimizeResult, error) {
	return ssn.OptimizeDecaps(spec)
}

// Driver/receiver building blocks.
type (
	// DriverSchedule tells a behavioural driver when its output is high.
	DriverSchedule = device.Schedule
)

// AddRampDriver attaches a behavioural switch driver between die rails.
func AddRampDriver(c *Circuit, name string, out, vdd, vss int, high DriverSchedule, p RampParams) error {
	return device.AddRampDriver(c, name, out, vdd, vss, high, p)
}

// AddCMOSDriver attaches a transistor-level inverter driver.
func AddCMOSDriver(c *Circuit, name string, out, vdd, vss int, gate Waveform, p CMOSParams) error {
	return device.AddCMOSDriver(c, name, out, vdd, vss, gate, p)
}

// PeriodicSchedule returns a repeating high-window schedule.
func PeriodicSchedule(delay, width, period float64) DriverSchedule {
	return device.PeriodicSchedule(delay, width, period)
}

// Eye-diagram analysis.
type (
	// EyeResult is a measured eye opening.
	EyeResult = eye.Result
)

// AnalyzeEye folds a transient waveform at the bit period and measures the
// eye opening between the given logic levels.
func AnalyzeEye(t, v []float64, period, vLow, vHigh, skip float64) (*EyeResult, error) {
	return eye.Analyze(t, v, period, vLow, vHigh, skip)
}

// PRBS returns a deterministic pseudo-random bit pattern.
func PRBS(n int, seed int64) []bool { return eye.PRBS(n, seed) }

// BitWaveform builds a PWL waveform from a bit pattern.
func BitWaveform(bits []bool, period, edge, vLow, vHigh float64) (PWL, error) {
	return eye.BitWaveform(bits, period, edge, vLow, vHigh)
}

// Numerical-trust diagnostics. Pipeline stages record every invariant
// check, auto-repair and conditioning estimate in a Diagnostics collector
// attached to their results (ExtractResult.Diagnostics(), TranResult.Diag,
// SSweep.Diag, FDTD Result.Diag); render it with Diagnostics.Render.
type (
	// Diagnostics is a thread-safe collector of trust-check records.
	Diagnostics = diag.Diagnostics
	// Diagnostic is one recorded check: stage, severity, margin, repair.
	Diagnostic = diag.Diagnostic
	// DiagSeverity grades a diagnostic: info, warning or error.
	DiagSeverity = diag.Severity
)

// Diagnostic severities.
const (
	DiagInfo    = diag.Info
	DiagWarning = diag.Warning
	DiagError   = diag.Error
)

// NewDiagnostics returns an empty diagnostics collector.
func NewDiagnostics() *Diagnostics { return diag.New() }

// SolveRefined factors a (equilibrated if beneficial) and solves ax=b with
// residual-based iterative refinement, returning the solution and the final
// relative residual ‖b−ax‖∞/(‖a‖∞‖x‖∞+‖b‖∞).
func SolveRefined(a *Matrix, b []float64) (x []float64, relres float64, err error) {
	return mat.SolveRefined(a, b)
}

// CMatrix is the dense complex matrix used for port impedance/scattering
// quantities (an alias of the internal linear-algebra type).
type CMatrix = mat.CMatrix

// Matrix is the dense real matrix type.
type Matrix = mat.Matrix
