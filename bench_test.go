// Benchmark harness: one benchmark per figure/table of the paper's
// evaluation section (see DESIGN.md §3 for the experiment index), plus the
// ablation studies of DESIGN.md §5. Each benchmark reports the headline
// reproduction metric alongside the timing, so
//
//	go test -bench=. -benchmem
//
// regenerates both the performance profile and the paper-vs-measured
// numbers recorded in EXPERIMENTS.md.
package pdnsim

import (
	"math"
	"os"
	"testing"
	"time"

	"pdnsim/internal/core"
	"pdnsim/internal/experiments"
)

// BenchmarkFig1SplitPlaneMesh — paper Fig. 1: discretisation and extraction
// of the complementary split MCM power planes.
func BenchmarkFig1SplitPlaneMesh(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig1SplitPlaneMesh(28, 20)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Net33.Cells+r.Net50.Cells), "cells")
		b.ReportMetric(r.TotalC33*1e12, "pF_33V_net")
	}
}

// BenchmarkEx1LPatchResonance — §6.1 example 1: first two resonances of the
// L-shaped patch; the reproduction metric is the deviation from the
// full-wave substitute (FDTD), which the paper reports as +3.0 % / +5.8 %.
func BenchmarkEx1LPatchResonance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Ex1LPatchResonance(14)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*(r.F0GHz/r.RefF0GHz-1), "f0_dev_%")
		b.ReportMetric(100*(r.F1GHz/r.RefF1GHz-1), "f1_dev_%")
	}
}

// BenchmarkFig5Transient — Figs. 4–5: coupled-microstrip transient with
// near/far-end crosstalk (both 5(a) and 5(b) come from this run).
func BenchmarkFig5Transient(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5CoupledMicrostrip()
		if err != nil {
			b.Fatal(err)
		}
		var fext float64
		for _, v := range r.VictimFar {
			if -v > fext {
				fext = -v
			}
		}
		b.ReportMetric(fext*1e3, "FEXT_mV")
	}
}

// BenchmarkFig7SParams — Figs. 6–7: |S21| of the HP test plane, 42-node
// equivalent circuit vs the cavity reference over 0.5–15 GHz.
func BenchmarkFig7SParams(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7HPPlaneSParams(16, 37, 120)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.MedianDBLow, "median_dB_below10GHz")
		b.ReportMetric(r.MedianDBHigh, "median_dB_above10GHz")
	}
}

// BenchmarkFig8TransientVsFDTD — Fig. 8: port-2 transient, equivalent
// circuit vs 2-D FDTD.
func BenchmarkFig8TransientVsFDTD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8TransientVsFDTD(16, 37)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.RMS, "RMS_%")
	}
}

// BenchmarkSSN1Prelayout — §6.2 pre-layout study: 7×10" board, 16-driver
// chip, switching-count and decap sweeps.
func BenchmarkSSN1Prelayout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.SSN1Prelayout(experiments.SSN1Config{})
		if err != nil {
			b.Fatal(err)
		}
		last := len(r.BouncePerCount) - 1
		b.ReportMetric(r.BouncePerCount[last]*1e3, "bounce16_mV")
		b.ReportMetric(r.DroopPerDecap[len(r.DroopPerDecap)-1]*1e3, "droop8decap_mV")
	}
}

// BenchmarkSSN2Postlayout — §6.2 post-layout study: 26 chips, 156 Vcc pins.
func BenchmarkSSN2Postlayout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.SSN2Postlayout(experiments.SSN2Config{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.WorstBounce*1e3, "worst_bounce_mV")
	}
}

// BenchmarkAblationTesting — DESIGN.md §5: collocation vs Galerkin.
func BenchmarkAblationTesting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationTesting(12)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.RelativeCDisagreement, "scheme_disagreement_%")
	}
}

// BenchmarkAblationToeplitz — DESIGN.md §5: kernel cache effectiveness.
func BenchmarkAblationToeplitz(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationToeplitz(12)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.DirectEvals)/float64(r.CachedEvals), "eval_reduction_x")
	}
}

// BenchmarkAblationImages — DESIGN.md §5: image-series depth.
func BenchmarkAblationImages(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationImages(10)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.RelErr[3]*100, "err_at_8_images_%")
	}
}

// BenchmarkAblationIntegrator — DESIGN.md §5: trapezoidal vs backward Euler.
func BenchmarkAblationIntegrator(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationIntegrator(12, 20)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.RMSTrapVsFDTD, "trap_RMS_%")
		b.ReportMetric(100*r.RMSBEVsFDTD, "BE_RMS_%")
	}
}

// BenchmarkFosterMOR — DESIGN.md §5b: exact Foster model-order reduction of
// the HP plane driving-point impedance; reports the order shrink of a
// 10 GHz truncation.
func BenchmarkFosterMOR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.FosterMOR(16, 37, 10e9)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.FullOrder), "full_order")
		b.ReportMetric(float64(r.TruncOrder), "trunc_order")
		b.ReportMetric(100*r.MaxErrBelowHalf, "err_below_fmax/2_%")
	}
}

// BenchmarkExtractLargeMesh — DESIGN.md §5l: the FFT-accelerated operator
// solve path (Toeplitz matvec + projected CG) against the dense LU reduction
// at a 32×32-cell plane, past the auto-mode crossover. The dense baseline is
// extracted once outside the timed loop; dense_over_cg_x is its wall time
// over the operator path's per-op time, and cap_dev_rel is the relative
// total-capacitance disagreement between the two paths. Skipped in smoke
// runs: the dense baseline alone takes several seconds.
func BenchmarkExtractLargeMesh(b *testing.B) {
	if os.Getenv("BENCH_SMOKE") == "1" {
		b.Skip("multi-second dense baseline; full bench runs only")
	}
	spec := func(operator string) *core.BoardSpec {
		return &core.BoardSpec{
			Name:       "large plane " + operator,
			Shape:      core.ShapeSpec{Type: "rect", W: 50, H: 40},
			PlaneSepMM: 0.4,
			EpsR:       4.5,
			SheetRes:   0.0006,
			Operator:   operator,
			MeshNx:     32,
			MeshNy:     32,
			ExtraNodes: 8,
			Ports: []core.PortSpec{
				{Name: "U1", X: 40, Y: 30},
				{Name: "U2", X: 12, Y: 8},
				{Name: "VRM", X: 5, Y: 35},
			},
		}
	}
	t0 := time.Now()
	dense, err := spec("dense").Extract()
	if err != nil {
		b.Fatal(err)
	}
	denseSec := time.Since(t0).Seconds()
	var capDev float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := spec("toeplitz").Extract()
		if err != nil {
			b.Fatal(err)
		}
		cd, ct := dense.Network.TotalCapacitance(), res.Network.TotalCapacitance()
		capDev = math.Abs(ct-cd) / math.Abs(cd)
	}
	b.ReportMetric(denseSec/(b.Elapsed().Seconds()/float64(b.N)), "dense_over_cg_x")
	b.ReportMetric(capDev, "cap_dev_rel")
}

// BenchmarkAblationMesh — DESIGN.md §5: mesh-density convergence of the
// first plane resonance.
func BenchmarkAblationMesh(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationMesh()
		if err != nil {
			b.Fatal(err)
		}
		finest := r.F0GHz[len(r.F0GHz)-1]
		b.ReportMetric(100*(finest/r.Target-1), "finest_vs_cavity_%")
	}
}
