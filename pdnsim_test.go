package pdnsim

import (
	"math"
	"math/cmplx"
	"testing"
)

// The facade must expose a working end-to-end flow: board JSON → extraction
// → frequency response → circuit realisation → transient.
func TestFacadeEndToEnd(t *testing.T) {
	spec := &BoardSpec{
		Name:       "facade plane",
		Shape:      ShapeSpec{Type: "rect", W: 30, H: 30},
		PlaneSepMM: 0.4,
		EpsR:       4.5,
		SheetRes:   0.6e-3,
		MeshNx:     10, MeshNy: 10,
		ExtraNodes: 6,
		Ports: []PortSpec{
			{Name: "A", X: 3, Y: 3},
			{Name: "B", X: 27, Y: 27},
		},
	}
	res, err := spec.Extract()
	if err != nil {
		t.Fatal(err)
	}
	z, err := res.Network.Zin(0, 2*math.Pi*1e8)
	if err != nil {
		t.Fatal(err)
	}
	if imag(z) >= 0 {
		t.Fatalf("plane should be capacitive at 100 MHz: %v", z)
	}

	// Realise into a circuit and run a transient current-injection.
	c := NewCircuit()
	ports, err := res.Network.Attach(c, "plane")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddISource("I1", Ground, ports[0],
		Pulse{V1: 0, V2: 0.5, Rise: 0.2e-9, Width: 2e-9}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddResistor("RVRM", ports[1], Ground, 0.01); err != nil {
		t.Fatal(err)
	}
	tr, err := c.Tran(TranOptions{Dt: 0.01e-9, Tstop: 4e-9, Method: Trapezoidal})
	if err != nil {
		t.Fatal(err)
	}
	v := tr.V(ports[0])
	var peak float64
	for _, x := range v {
		peak = math.Max(peak, math.Abs(x))
	}
	if peak <= 0 || peak > 10 {
		t.Fatalf("implausible injection response: %g", peak)
	}
}

func TestFacadeParseBoard(t *testing.T) {
	spec, err := ParseBoard([]byte(`{
	  "name": "json plane",
	  "shape": {"type": "rect", "w_mm": 10, "h_mm": 10},
	  "plane_sep_mm": 0.3, "eps_r": 4.2, "sheet_res_ohm_sq": 0,
	  "mesh_nx": 6, "mesh_ny": 6, "extra_nodes": 0,
	  "ports": [{"name": "P", "x_mm": 5, "y_mm": 5}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "json plane" {
		t.Fatalf("spec = %+v", spec)
	}
}

func TestFacadeTLineAndSParams(t *testing.T) {
	p, err := SolveTLine(TLineGeometry{
		Strips: []TLineStrip{{X: 0, W: 1e-3}},
		H:      0.55e-3, EpsR: 4.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	z0, err := p.Z0()
	if err != nil {
		t.Fatal(err)
	}
	if z0 < 30 || z0 > 90 {
		t.Fatalf("Z0 = %g", z0)
	}

	cav, err := NewCavity(20e-3, 20e-3, 0.4e-3, 4.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := cav.AddPort("P1", 5e-3, 5e-3); err != nil {
		t.Fatal(err)
	}
	if err := cav.AddPort("P2", 15e-3, 15e-3); err != nil {
		t.Fatal(err)
	}
	// Below the first cavity mode (≈3.5 GHz) the norms stay small enough
	// for the sufficient-only passivity screen.
	sw, err := SweepS(LinSpace(0.2e9, 1.5e9, 10), 50, cav.Z)
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Points) != 10 {
		t.Fatalf("sweep points = %d", len(sw.Points))
	}
	if !sw.Passive(1e-6) {
		t.Fatal("cavity S-parameters must be passive")
	}
}

func TestFacadeFDTD(t *testing.T) {
	sim, err := NewFDTD(RectShape(0, 0, 10e-3, 10e-3), 12, 12, 0.3e-3, 4.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	port, err := sim.AddPort("P", Point{X: 5e-3, Y: 5e-3}, 50, func(t float64) float64 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	// τ = R·C_plane ≈ 0.66 ns; run ~9τ to settle.
	if _, err := sim.Run(0.9*sim.MaxStableDt(), 6e-9); err != nil {
		t.Fatal(err)
	}
	if last := port.V[len(port.V)-1]; math.Abs(last-1) > 0.02 {
		t.Fatalf("port should charge to the source: %g", last)
	}
}

func TestFacadeSSN(t *testing.T) {
	sys, err := BuildSSN(
		SSNBoard{
			Shape: RectShape(0, 0, 40e-3, 30e-3), PlaneSep: 0.4e-3, EpsR: 4.5,
			MeshNx: 8, MeshNy: 6, ExtraNodes: 4,
		},
		SSNVRM{At: Point{X: 3e-3, Y: 3e-3}, V: 3.3, R: 5e-3, L: 10e-9},
		[]SSNChip{{
			Name: "U1", At: Point{X: 32e-3, Y: 22e-3},
			Drivers: 4, Switching: 4, Vdd: 3.3, Pin: QFPPin,
			Kind: SSNRampDriver, Delay: 0.5e-9, Width: 2e-9,
		}},
		nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Run(0.02e-9, 4e-9, Trapezoidal)
	if err != nil {
		t.Fatal(err)
	}
	if rep.GroundBounce["U1"] <= 0 {
		t.Fatal("no SSN produced")
	}
}

func TestFacadeConstants(t *testing.T) {
	if cmplx.Abs(complex(C0*math.Sqrt(Mu0*Eps0), 0)-1) > 1e-6 {
		t.Fatalf("c0·√(μ0ε0) = %g, want 1", C0*math.Sqrt(Mu0*Eps0))
	}
}
