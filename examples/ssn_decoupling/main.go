// SSN decoupling: the paper's flagship application (§6.2) — simulate
// simultaneous switching noise on a board-level power distribution network
// and quantify how decoupling capacitors reduce it. The full co-simulation
// couples the extracted plane network, package parasitics, and switching
// drivers at every time step.
package main

import (
	"fmt"
	"log"

	"pdnsim"
)

func main() {
	board := pdnsim.SSNBoard{
		Shape:    pdnsim.RectShape(0, 0, 120e-3, 80e-3),
		PlaneSep: 0.5e-3,
		EpsR:     4.5,
		SheetRes: 0.6e-3,
		MeshNx:   18, MeshNy: 12,
		ExtraNodes: 10,
	}
	vrm := pdnsim.SSNVRM{At: pdnsim.Point{X: 8e-3, Y: 8e-3}, V: 3.3, R: 3e-3, L: 15e-9}
	chip := pdnsim.SSNChip{
		Name: "ASIC", At: pdnsim.Point{X: 90e-3, Y: 55e-3},
		Drivers: 16, Switching: 12, Vdd: 3.3,
		Pin: pdnsim.QFPPin, VddPins: 4,
		Kind:  pdnsim.SSNRampDriver,
		LoadC: 25e-12, Delay: 1e-9, Width: 4e-9,
	}

	scenarios := []struct {
		name   string
		decaps []pdnsim.SSNDecap
	}{
		{"no decoupling", nil},
		{"2 × 100 nF near the chip", []pdnsim.SSNDecap{
			{Name: "C1", At: pdnsim.Point{X: 78e-3, Y: 52e-3}, C: 100e-9, ESR: 15e-3, ESL: 0.8e-9},
			{Name: "C2", At: pdnsim.Point{X: 98e-3, Y: 45e-3}, C: 100e-9, ESR: 15e-3, ESL: 0.8e-9},
		}},
		{"2 × 100 nF far from the chip", []pdnsim.SSNDecap{
			{Name: "C1", At: pdnsim.Point{X: 20e-3, Y: 20e-3}, C: 100e-9, ESR: 15e-3, ESL: 0.8e-9},
			{Name: "C2", At: pdnsim.Point{X: 30e-3, Y: 65e-3}, C: 100e-9, ESR: 15e-3, ESL: 0.8e-9},
		}},
	}

	fmt.Println("SSN study: 12 of 16 drivers switching on one ASIC, 3.3 V rail")
	fmt.Printf("%-30s %14s %14s %14s\n", "scenario", "gnd bounce", "rail droop", "plane droop")
	for _, sc := range scenarios {
		sys, err := pdnsim.BuildSSN(board, vrm, []pdnsim.SSNChip{chip}, sc.decaps)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := sys.Run(0.025e-9, 8e-9, pdnsim.Trapezoidal)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-30s %11.0f mV %11.0f mV %11.0f mV\n",
			sc.name,
			rep.GroundBounce["ASIC"]*1e3,
			rep.RailDroop["ASIC"]*1e3,
			rep.PlaneDroop["ASIC"]*1e3)
	}
	fmt.Println("\nObservations (all paper §6.2 phenomena):")
	fmt.Println(" - decaps near the chip cut the board-level plane droop sharply;")
	fmt.Println(" - the same parts placed far away act through the plane's spreading")
	fmt.Println("   inductance and can even excite plane anti-resonances;")
	fmt.Println(" - die-level ground bounce barely improves: it is set by the package")
	fmt.Println("   pin inductance, which board decoupling cannot reach.")

	// Let the optimiser pick placements instead of guessing: greedy
	// frequency-domain selection against a PDN impedance mask (the paper's
	// "optimize the decoupling strategy" goal).
	candidates := []pdnsim.DecapCandidate{
		{At: pdnsim.Point{X: 78e-3, Y: 52e-3}, C: 100e-9, ESR: 15e-3, ESL: 0.8e-9},
		{At: pdnsim.Point{X: 98e-3, Y: 45e-3}, C: 100e-9, ESR: 15e-3, ESL: 0.8e-9},
		{At: pdnsim.Point{X: 100e-3, Y: 65e-3}, C: 100e-9, ESR: 15e-3, ESL: 0.8e-9},
		{At: pdnsim.Point{X: 20e-3, Y: 20e-3}, C: 100e-9, ESR: 15e-3, ESL: 0.8e-9},
		{At: pdnsim.Point{X: 30e-3, Y: 65e-3}, C: 100e-9, ESR: 15e-3, ESL: 0.8e-9},
		{At: pdnsim.Point{X: 60e-3, Y: 40e-3}, C: 100e-9, ESR: 15e-3, ESL: 0.8e-9},
	}
	opt, err := pdnsim.OptimizeDecaps(pdnsim.OptimizeSpec{
		Board:      board,
		VRM:        vrm,
		Observe:    chip.At,
		Candidates: candidates,
		TargetOhm:  2.5,
		FminHz:     1e7, FmaxHz: 5e8,
		NFreq:     30,
		MaxDecaps: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noptimizer: |Z(chip)| peak %.2f Ω bare → %.2f Ω with %d decaps (mask 2.5 Ω met: %v)\n",
		opt.PeakHistory[0], opt.PeakHistory[len(opt.PeakHistory)-1], len(opt.Chosen), opt.Met)
	for rank, idx := range opt.Chosen {
		c := candidates[idx]
		fmt.Printf("  pick %d: site (%.0f, %.0f) mm → peak %.2f Ω\n",
			rank+1, c.At.X*1e3, c.At.Y*1e3, opt.PeakHistory[rank+1])
	}
}
