// Crosstalk: extract a coupled-microstrip pair with the 2-D field solver,
// run the modal time-domain simulation, and report near/far-end crosstalk —
// the workload of the paper's Figs. 4–5 on a typical PCB geometry.
package main

import (
	"fmt"
	"log"
	"math"

	"pdnsim"
)

func main() {
	// Two 0.3 mm traces with 0.3 mm gap on 0.2 mm FR4 — a tight DDR-era
	// routing pitch.
	params, err := pdnsim.SolveTLine(pdnsim.TLineGeometry{
		Strips: []pdnsim.TLineStrip{
			{X: -0.3e-3, W: 0.3e-3},
			{X: +0.3e-3, W: 0.3e-3},
		},
		H:    0.2e-3,
		EpsR: 4.5,
	})
	if err != nil {
		log.Fatal(err)
	}
	ze, zo, err := params.EvenOddImpedances()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("even-mode Z: %.1f Ω, odd-mode Z: %.1f Ω, εeff: %.2f\n\n",
		ze, zo, params.EpsEff(0))

	// A 10 cm coupled run, both lines terminated in 50 Ω, aggressor driven
	// with a 1 ns pulse with 100 ps edges.
	const length = 0.10
	c := pdnsim.NewCircuit()
	src := c.Node("src")
	an, af := c.Node("aggr_near"), c.Node("aggr_far")
	vn, vf := c.Node("victim_near"), c.Node("victim_far")
	if _, err := c.AddVSource("VS", src, pdnsim.Ground,
		pdnsim.Pulse{V1: 0, V2: 3.3, Rise: 0.1e-9, Fall: 0.1e-9, Width: 1e-9}); err != nil {
		log.Fatal(err)
	}
	for _, r := range []struct {
		name string
		a, b int
	}{
		{"Rs", src, an}, {"Rvn", vn, pdnsim.Ground},
		{"Rfa", af, pdnsim.Ground}, {"Rfv", vf, pdnsim.Ground},
	} {
		if _, err := c.AddResistor(r.name, r.a, r.b, 50); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := params.Attach(c, "PAIR", []int{an, vn}, pdnsim.Ground,
		[]int{af, vf}, pdnsim.Ground, length); err != nil {
		log.Fatal(err)
	}
	res, err := c.Tran(pdnsim.TranOptions{Dt: 5e-12, Tstop: 4e-9, Method: pdnsim.Trapezoidal})
	if err != nil {
		log.Fatal(err)
	}

	peak := func(v []float64) (hi, lo float64) {
		hi, lo = math.Inf(-1), math.Inf(1)
		for _, x := range v {
			hi = math.Max(hi, x)
			lo = math.Min(lo, x)
		}
		return
	}
	for _, w := range []struct {
		name string
		node int
	}{
		{"aggressor near", an}, {"aggressor far", af},
		{"victim near (NEXT)", vn}, {"victim far (FEXT)", vf},
	} {
		hi, lo := peak(res.V(w.node))
		fmt.Printf("%-20s peak %+7.1f mV   trough %+7.1f mV\n", w.name, hi*1e3, lo*1e3)
	}
	fmt.Println("\n(microstrip signature: negative far-end crosstalk pulse, " +
		"positive near-end plateau)")
}
