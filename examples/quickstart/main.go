// Quickstart: extract a power/ground plane pair into an RLC equivalent
// circuit, inspect its impedance profile, and emit a SPICE netlist — the
// core flow of the DAC'98 paper in ~60 lines.
package main

import (
	"fmt"
	"log"
	"math"
	"math/cmplx"
	"strings"

	"pdnsim"
)

func main() {
	// A 50×40 mm plane pair: FR4, 0.4 mm separation, 1 oz copper.
	board := &pdnsim.BoardSpec{
		Name:       "quickstart plane",
		Shape:      pdnsim.ShapeSpec{Type: "rect", W: 50, H: 40},
		PlaneSepMM: 0.4,
		EpsR:       4.5,
		SheetRes:   0.6e-3,
		MeshNx:     16, MeshNy: 12,
		ExtraNodes: 10,
		Ports: []pdnsim.PortSpec{
			{Name: "CPU", X: 40, Y: 30},
			{Name: "VRM", X: 5, Y: 5},
		},
	}
	res, err := board.Extract()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mesh: %s\n", res.Mesh.Stats())
	fmt.Printf("equivalent circuit: %d nodes, %d ports, plane C = %.2f nF\n\n",
		res.Network.NumNodes(), res.Network.NumPorts, res.Network.TotalCapacitance()*1e9)

	// Impedance seen by the CPU across frequency: capacitive at low
	// frequency, first cavity resonance in the GHz range.
	fmt.Println("CPU-port input impedance:")
	for _, f := range []float64{1e6, 1e7, 1e8, 5e8, 1e9, 2e9, 3e9} {
		z, err := res.Network.Zin(0, 2*math.Pi*f)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %8.3g Hz   |Z| = %10.4g Ω   phase %6.1f°\n",
			f, cmplx.Abs(z), cmplx.Phase(z)*180/math.Pi)
	}

	// The equivalent circuit as a SPICE netlist (first lines).
	nl := res.Network.Netlist(board.Name)
	lines := strings.SplitN(nl, "\n", 12)
	fmt.Println("\nnetlist preview:")
	for _, l := range lines[:11] {
		fmt.Println("  " + l)
	}
	fmt.Println("  ...")
}
