// SSN eye closure: the paper's whole point in one picture — simultaneous
// switching noise on the power network degrades the data eye of a signal
// net sharing the same die rails. A PRBS driver sends data down a matched
// line while neighbouring output drivers switch synchronously; the eye is
// measured at the receiver with the aggressors quiet and active.
package main

import (
	"fmt"
	"log"

	"pdnsim"
)

const (
	bitPeriod = 2.5e-9 // 400 Mb/s
	nBits     = 40
	vdd       = 3.3
)

func main() {
	fmt.Printf("400 Mb/s PRBS through a 50 Ω line; %d aggressor drivers share the rails\n\n", 12)
	quiet := runEye(0)
	noisy := runEye(12)
	fmt.Printf("%-22s %12s %14s\n", "scenario", "eye height", "eye width")
	fmt.Printf("%-22s %9.0f mV %11.2f ns\n", "aggressors quiet", quiet.EyeHeight*1e3, quiet.EyeWidth*1e9)
	fmt.Printf("%-22s %9.0f mV %11.2f ns\n", "aggressors switching", noisy.EyeHeight*1e3, noisy.EyeWidth*1e9)
	fmt.Printf("\nSSN costs %.0f mV of eye height (%.0f%% of the quiet opening)\n",
		(quiet.EyeHeight-noisy.EyeHeight)*1e3,
		100*(quiet.EyeHeight-noisy.EyeHeight)/quiet.EyeHeight)
}

// runEye builds the co-simulation with the given number of synchronous
// aggressor drivers and returns the receiver eye.
func runEye(aggressors int) *pdnsim.EyeResult {
	sys, err := pdnsim.BuildSSN(
		pdnsim.SSNBoard{
			Shape:    pdnsim.RectShape(0, 0, 80e-3, 60e-3),
			PlaneSep: 0.4e-3,
			EpsR:     4.5,
			SheetRes: 0.6e-3,
			MeshNx:   14, MeshNy: 10,
			ExtraNodes: 8,
		},
		pdnsim.SSNVRM{At: pdnsim.Point{X: 6e-3, Y: 6e-3}, V: vdd, R: 3e-3, L: 15e-9},
		[]pdnsim.SSNChip{{
			Name: "U1", At: pdnsim.Point{X: 60e-3, Y: 42e-3},
			Drivers: 16, Switching: aggressors, Vdd: vdd,
			Pin: pdnsim.QFPPin, VddPins: 4,
			Kind:  pdnsim.SSNRampDriver,
			LoadC: 25e-12,
			// Aggressors toggle every bit period, aligned with the data.
			Delay: 10e-9, Width: bitPeriod / 2,
		}},
		nil)
	if err != nil {
		log.Fatal(err)
	}
	// The data path: one more driver on the same die rails, a 1 ns matched
	// line, and a terminated receiver. The aggressor burst starting at
	// 10 ns stresses the mid-stream bits.
	c := sys.Circuit
	die := sys.Chips[0]
	out := c.Node("data_out")
	far := c.Node("data_far")
	bits := pdnsim.PRBS(nBits, 42)
	schedule := func(t float64) bool {
		idx := int(t / bitPeriod)
		if idx < 0 || idx >= len(bits) {
			return false
		}
		return bits[idx]
	}
	p := pdnsim.RampParams{Ron: 25, Roff: 1e9, CLoad: 2e-12}
	if err := pdnsim.AddRampDriver(c, "data_drv", out, die.DieVdd, die.DieGnd, schedule, p); err != nil {
		log.Fatal(err)
	}
	if _, err := c.AddResistor("data_rs", out, c.Node("data_in"), 25); err != nil {
		log.Fatal(err)
	}
	if _, err := c.AddTLine("data_line", c.Node("data_in"), pdnsim.Ground, far, pdnsim.Ground, 50, 1e-9); err != nil {
		log.Fatal(err)
	}
	if _, err := c.AddResistor("data_rt", far, pdnsim.Ground, 50); err != nil {
		log.Fatal(err)
	}

	res, err := c.Tran(pdnsim.TranOptions{
		Dt: 0.05e-9, Tstop: float64(nBits) * bitPeriod, Method: pdnsim.Trapezoidal,
	})
	if err != nil {
		log.Fatal(err)
	}
	// The 25 Ω driver + 25 Ω series resistor form a matched source, so the
	// receiver swings 0 … Vdd/2.
	eyeRes, err := pdnsim.AnalyzeEye(res.Time, res.V(far), bitPeriod, 0, vdd/2, 5e-9)
	if err != nil {
		log.Fatal(err)
	}
	return eyeRes
}
