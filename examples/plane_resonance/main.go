// Plane resonance: cross-validate the three independent plane models in
// this repository — BEM equivalent circuit, analytic cavity series, and the
// 2-D FDTD solver — on the first resonant mode of a plane pair.
package main

import (
	"fmt"
	"log"
	"math"
	"math/cmplx"

	"pdnsim"
)

const (
	side = 30e-3
	sep  = 0.5e-3
	epsR = 4.5

	// impulseWidth is the duration of the rectangular current kick that
	// rings the cavity: 30 ps ≈ 1/(10·f₁₀) for this 30 mm plane, short
	// enough to excite the first mode without shaping its spectrum.
	impulseWidth = 0.03e-9
)

func main() {
	fAnalytic := pdnsim.C0 / (2 * side * math.Sqrt(epsR))
	fmt.Printf("30×30 mm plane pair, %.1f mm dielectric εr=%.1f\n", sep*1e3, epsR)
	fmt.Printf("analytic (1,0) cavity mode: %.3f GHz\n\n", fAnalytic/1e9)

	// 1. BEM equivalent circuit: |Zin| sweep at a corner port.
	mesh, err := pdnsim.GridMesh(pdnsim.RectShape(0, 0, side, side), 14, 14)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := mesh.AddPort("P", pdnsim.Point{X: 0, Y: 0}); err != nil {
		log.Fatal(err)
	}
	kern, err := pdnsim.NewKernel(pdnsim.OverGround, sep, epsR, 1)
	if err != nil {
		log.Fatal(err)
	}
	asm, err := pdnsim.Assemble(mesh, kern, pdnsim.DefaultBEMOptions())
	if err != nil {
		log.Fatal(err)
	}
	nw, err := pdnsim.ExtractNetwork(asm, pdnsim.ExtractOptions{ExtraNodes: 1 << 20})
	if err != nil {
		log.Fatal(err)
	}
	fBEM := peakFrequency(fAnalytic, func(f float64) float64 {
		z, err := nw.Zin(0, 2*math.Pi*f)
		if err != nil {
			log.Fatal(err)
		}
		return cmplx.Abs(z)
	})

	// 2. Analytic cavity model at the same port.
	cav, err := pdnsim.NewCavity(side, side, sep, epsR)
	if err != nil {
		log.Fatal(err)
	}
	if err := cav.AddPort("P", 0.5e-3, 0.5e-3); err != nil {
		log.Fatal(err)
	}
	fCav := peakFrequency(fAnalytic, func(f float64) float64 {
		z, err := cav.Z(2 * math.Pi * f)
		if err != nil {
			log.Fatal(err)
		}
		return cmplx.Abs(z.At(0, 0))
	})

	// 3. FDTD ring-down spectroscopy.
	sim, err := pdnsim.NewFDTD(pdnsim.RectShape(0, 0, side, side), 48, 48, sep, epsR, 0)
	if err != nil {
		log.Fatal(err)
	}
	port, err := sim.AddPort("P", pdnsim.Point{X: 0, Y: 0}, 1e5, func(t float64) float64 {
		if t < impulseWidth {
			return 1e4
		}
		return 0
	})
	if err != nil {
		log.Fatal(err)
	}
	run, err := sim.Run(0.9*sim.MaxStableDt(), 8e-9)
	if err != nil {
		log.Fatal(err)
	}
	fFDTD := dominantTone(run.Time, port.V, 0.6*fAnalytic, 1.4*fAnalytic)

	fmt.Printf("%-28s %10s %10s\n", "model", "f0 (GHz)", "vs analytic")
	for _, r := range []struct {
		name string
		f    float64
	}{
		{"BEM equivalent circuit", fBEM},
		{"cavity modal series", fCav},
		{"2-D FDTD ring-down", fFDTD},
	} {
		fmt.Printf("%-28s %10.3f %+9.1f%%\n", r.name, r.f/1e9, 100*(r.f/fAnalytic-1))
	}
	fmt.Println("\n(the cavity series and the FDTD grid share the ideal magnetic-wall" +
		" model and agree to numerical precision; the BEM extraction also captures" +
		" edge fringing fields, which pull its resonance a few percent lower)")
}

// peakFrequency locates the magnitude maximum of fn in a ±25 % window
// around the expected (1,0) mode, so all three models report the same mode
// (the degenerate (1,1) mode sits √2 higher and must stay outside).
func peakFrequency(fExpect float64, fn func(f float64) float64) float64 {
	best, bestMag := 0.0, 0.0
	for f := 0.75 * fExpect; f <= 1.25*fExpect; f += 0.005e9 {
		if m := fn(f); m > bestMag {
			best, bestMag = f, m
		}
	}
	return best
}

// dominantTone finds the strongest spectral component of a ring-down.
func dominantTone(t, v []float64, fLo, fHi float64) float64 {
	var mean float64
	for _, x := range v {
		mean += x
	}
	mean /= float64(len(v))
	tw := t[len(t)-1]
	best, bestMag := 0.0, 0.0
	for f := fLo; f <= fHi; f += (fHi - fLo) / 300 {
		var re, im float64
		for i, x := range v {
			w := 0.5 * (1 - math.Cos(2*math.Pi*t[i]/tw))
			ph := 2 * math.Pi * f * t[i]
			re += (x - mean) * w * math.Cos(ph)
			im += (x - mean) * w * math.Sin(ph)
		}
		if m := math.Hypot(re, im); m > bestMag {
			best, bestMag = f, m
		}
	}
	return best
}
